package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Varslint enforces the observability identity between three places a
// counter's name lives: the atomic field that is incremented, the
// /debug/vars document that exports it, and the DESIGN.md counter table
// that documents it.
//
//   - every atomic.Uint64 struct field that is incremented (.Add) in
//     internal/server or internal/router must be exported on /debug/vars
//     exactly once — a counter that counts but never surfaces is a blind
//     spot, and one surfaced twice is an ambiguity;
//   - every exported counter name must appear in the DESIGN.md counter
//     table (between the varslint:counters markers);
//   - the identity families declared in DESIGN.md (such as
//     probes_total + coalesced_total + cache_hits == requests_total) are
//     cross-referenced by name: an identity naming a var that the package
//     does not export is a stale contract.
//
// Export binding is deliberately direct: a vars entry counts as exporting
// a field when its value is `field.Load()` or a local assigned straight
// from `field.Load()`. Derived aggregates (sums over shards) are gauges on
// top of counters, not the counters' registration.
var Varslint = &Analyzer{
	Name: "varslint",
	Doc:  "incremented counters export exactly once on /debug/vars, appear in the DESIGN.md counter table, and identity families resolve by name",
	Run:  runVarslint,
}

// varsScope lists the packages that publish a /debug/vars document.
var varsScope = map[string]bool{"internal/server": true, "internal/router": true}

// Markers delimiting the counter table (and identity lines) in DESIGN.md.
const (
	countersBegin = "<!-- varslint:counters:begin -->"
	countersEnd   = "<!-- varslint:counters:end -->"
)

// isAtomicCounter reports whether a type is sync/atomic.Uint64.
func isAtomicCounter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Uint64"
}

// fieldVar resolves an expression to the struct-field object it denotes,
// through any selector chain (`s.met.requests` -> the requests field).
func (p *Pass) fieldVar(e ast.Expr) *types.Var {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := p.Mod.Info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	if v, ok := p.ObjectOf(sel.Sel).(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// loadOfCounter resolves `X.Load()` to the atomic counter field X, or nil.
func (p *Pass) loadOfCounter(e ast.Expr) *types.Var {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return nil
	}
	field := p.fieldVar(sel.X)
	if field == nil || !isAtomicCounter(field.Type()) {
		return nil
	}
	return field
}

// export is one /debug/vars entry bound to a counter field.
type export struct {
	key string
	pos token.Pos
}

func runVarslint(p *Pass) {
	if !varsScope[p.Pkg.Rel] {
		return
	}

	increments := map[*types.Var]token.Pos{} // counter field -> first .Add site
	exports := map[*types.Var][]export{}     // counter field -> vars entries
	allKeys := map[string]bool{}             // every string key of a vars literal
	var anchor token.Pos                     // fallback position for package-level findings

	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		if anchor == token.NoPos {
			anchor = f.AST.Pos()
		}
		// Pass A: increments, and local bindings `x := field.Load()`.
		bindings := map[types.Object]*types.Var{}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
					if field := p.fieldVar(sel.X); field != nil && isAtomicCounter(field.Type()) {
						if _, seen := increments[field]; !seen {
							increments[field] = n.Pos()
						}
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if field := p.loadOfCounter(rhs); field != nil {
							if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
								if obj := p.ObjectOf(id); obj != nil {
									bindings[obj] = field
								}
							}
						}
					}
				}
			}
			return true
		})
		// Pass B: vars-document literals (map[string]any composite
		// literals with string keys).
		ast.Inspect(f.AST, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !p.isStringAnyMap(lit) {
				return true
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := stringLit(kv.Key)
				if !ok {
					continue
				}
				allKeys[key] = true
				field := p.loadOfCounter(kv.Value)
				if field == nil {
					if id, isID := kv.Value.(*ast.Ident); isID {
						if obj := p.ObjectOf(id); obj != nil {
							field = bindings[obj]
						}
					}
				}
				if field != nil && isAtomicCounter(field.Type()) {
					exports[field] = append(exports[field], export{key: key, pos: kv.Key.Pos()})
				}
			}
			return true
		})
	}

	// Counters that count but never surface, or surface ambiguously.
	for field, pos := range increments {
		es := exports[field]
		switch {
		case len(es) == 0:
			p.Reportf(pos, "counter %s is incremented but never exported on /debug/vars", field.Name())
		case len(es) > 1:
			sort.Slice(es, func(i, j int) bool { return es[i].pos < es[j].pos })
			p.Reportf(es[1].pos, "counter %s is exported %d times on /debug/vars (first as %q): register each counter exactly once", field.Name(), len(es), es[0].key)
		}
	}

	// Cross-reference the DESIGN.md counter table and identity families.
	design, ok := p.Aux("DESIGN.md")
	if !ok {
		return // fixture without a DESIGN.md stand-in: nothing to cross-check
	}
	table, identities, found := parseCounterTable(design)
	if !found {
		p.Reportf(anchor, "DESIGN.md has no varslint counter table (%s ... %s): document the /debug/vars counters there", countersBegin, countersEnd)
		return
	}
	var sortedExports []export
	for _, es := range exports {
		sortedExports = append(sortedExports, es...)
	}
	sort.Slice(sortedExports, func(i, j int) bool { return sortedExports[i].pos < sortedExports[j].pos })
	for _, e := range sortedExports {
		if !table[e.key] {
			p.Reportf(e.pos, "counter %q is not documented in the DESIGN.md counter table", e.key)
		}
	}
	for _, id := range identities {
		if id.pkg != p.Pkg.Rel {
			continue
		}
		for _, name := range id.names {
			if !allKeys[name] {
				p.Reportf(anchor, "DESIGN.md identity %q references %q, which %s does not export on /debug/vars", id.text, name, p.Pkg.Rel)
			}
		}
	}
}

// isStringAnyMap reports whether a composite literal has type
// map[string]any (directly or through a named type).
func (p *Pass) isStringAnyMap(lit *ast.CompositeLit) bool {
	t := p.TypeOf(lit)
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	kb, ok := m.Key().Underlying().(*types.Basic)
	if !ok || kb.Kind() != types.String {
		return false
	}
	i, ok := m.Elem().Underlying().(*types.Interface)
	return ok && i.Empty()
}

// stringLit unwraps a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	return strings.Trim(bl.Value, "`\""), true
}

// identity is one declared counter identity from DESIGN.md.
type identity struct {
	pkg   string
	names []string
	text  string
}

// parseCounterTable extracts the documented counter names and identity
// declarations from the varslint-marked region of DESIGN.md. Counter names
// are the backtick-quoted first column of table rows; identities are lines
// of the form
//
//	identity (internal/server): `probes_total` + `coalesced_total` + `cache_hits` == `requests_total`
func parseCounterTable(design []byte) (table map[string]bool, identities []identity, found bool) {
	text := string(design)
	start := strings.Index(text, countersBegin)
	end := strings.Index(text, countersEnd)
	if start < 0 || end < 0 || end < start {
		return nil, nil, false
	}
	table = map[string]bool{}
	for _, line := range strings.Split(text[start+len(countersBegin):end], "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "identity ("); ok {
			pkg, expr, ok := strings.Cut(rest, "):")
			if !ok {
				continue
			}
			id := identity{pkg: strings.TrimSpace(pkg), text: strings.TrimSpace(expr)}
			for _, name := range backtickNames(expr) {
				id.names = append(id.names, name)
			}
			identities = append(identities, id)
			continue
		}
		if strings.HasPrefix(line, "|") {
			for _, name := range backtickNames(line) {
				table[name] = true
				break // first column only: the counter name
			}
		}
	}
	return table, identities, true
}

// backtickNames extracts `quoted` tokens from a line.
func backtickNames(line string) []string {
	var out []string
	for {
		i := strings.IndexByte(line, '`')
		if i < 0 {
			return out
		}
		line = line[i+1:]
		j := strings.IndexByte(line, '`')
		if j < 0 {
			return out
		}
		out = append(out, line[:j])
		line = line[j+1:]
	}
}
