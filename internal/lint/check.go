package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/types"
	"strings"
)

// Type-checking layer: resolves every package of a Module through the
// standard library's go/types, with no golang.org/x/tools dependency.
// Standard-library imports are type-checked from GOROOT source via
// importer.ForCompiler(fset, "source", ...); module-internal imports are
// resolved from the Module's own parsed packages, memoized in dependency
// order. The merged types.Info spans every file — including test files,
// which are re-checked together with their package so analyzers see
// resolved objects everywhere.
//
// The checker is deliberately lenient: errors accumulate in
// Module.TypeErrors and checking continues with partial information. The
// build stage (go build ./...) guards against real compile errors, so on a
// healthy tree the error list is empty; mid-refactor trees and fixture
// packages still lint with whatever the checker could resolve.

// checker memoizes the export type-checking of module packages.
type checker struct {
	m     *Module
	std   types.Importer
	byRel map[string]*Package
	done  map[string]*types.Package
}

// importerFunc adapts a closure to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// typeCheck populates m.Info (and m.TypeErrors) for every package of m.
func typeCheck(m *Module) {
	m.Info = newInfo()
	c := &checker{
		m:     m,
		std:   importer.ForCompiler(m.Fset, "source", nil),
		byRel: map[string]*Package{},
		done:  map[string]*types.Package{},
	}
	for _, pkg := range m.Pkgs {
		c.byRel[pkg.Rel] = pkg
	}
	for _, pkg := range m.Pkgs {
		c.checkPackage(pkg)
	}
}

// importPath maps a module-relative directory to its import path.
func (c *checker) importPath(rel string) string {
	if rel == "." || c.m.Path == "" {
		return c.m.Path
	}
	return c.m.Path + "/" + rel
}

// Import resolves one import path: module-internal paths from the loaded
// packages, everything else from the standard library's source.
func (c *checker) Import(path string) (*types.Package, error) {
	if c.m.Path != "" && (path == c.m.Path || strings.HasPrefix(path, c.m.Path+"/")) {
		rel := "."
		if path != c.m.Path {
			rel = strings.TrimPrefix(path, c.m.Path+"/")
		}
		pkg := c.byRel[rel]
		if pkg == nil {
			return nil, fmt.Errorf("lint: import %q names no loaded package", path)
		}
		return c.export(pkg)
	}
	return c.std.Import(path)
}

// export type-checks the non-test files of pkg (the unit other packages
// import), memoized per import path.
func (c *checker) export(pkg *Package) (*types.Package, error) {
	path := c.importPath(pkg.Rel)
	if path == "" {
		path = pkg.Rel // fixture modules: the rel doubles as the path
	}
	if tp, ok := c.done[path]; ok {
		if tp == nil {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		return tp, nil
	}
	c.done[path] = nil // in progress: a re-entrant import is a cycle
	var files []*ast.File
	for _, f := range pkg.Files {
		if !f.Test && !strings.HasSuffix(f.AST.Name.Name, "_test") {
			files = append(files, f.AST)
		}
	}
	tp := c.checkFiles(path, files)
	c.done[path] = tp
	return tp, nil
}

// checkPackage runs every check unit a directory needs: the export unit,
// a combined base+in-package-test unit when _test.go files share the
// package name, and the external test package when files declare name_test.
// All units merge into the shared Module.Info.
func (c *checker) checkPackage(pkg *Package) {
	var name string
	var inTest, extTest bool
	for _, f := range pkg.Files {
		n := f.AST.Name.Name
		switch {
		case strings.HasSuffix(n, "_test"):
			extTest = true
		case f.Test:
			inTest = true
			name = n
		default:
			name = n
		}
	}
	//lint:ignore errlint check errors are collected by the Config.Error handler, not returned
	_, _ = c.export(pkg)

	path := c.importPath(pkg.Rel)
	if path == "" {
		path = pkg.Rel
	}
	if inTest {
		// Re-check base + in-package test files as one unit so test-file
		// identifiers resolve; entries for base files are overwritten with
		// objects consistent across the whole unit.
		var files []*ast.File
		for _, f := range pkg.Files {
			if f.AST.Name.Name == name {
				files = append(files, f.AST)
			}
		}
		c.checkFiles(path, files)
	}
	if extTest {
		var files []*ast.File
		for _, f := range pkg.Files {
			if strings.HasSuffix(f.AST.Name.Name, "_test") {
				files = append(files, f.AST)
			}
		}
		c.checkFiles(path+".test", files)
	}
}

// checkFiles runs one go/types check unit, merging into the shared Info
// and collecting (not propagating) errors.
func (c *checker) checkFiles(path string, files []*ast.File) *types.Package {
	conf := types.Config{
		Importer: importerFunc(c.Import),
		Error:    func(err error) { c.m.TypeErrors = append(c.m.TypeErrors, err) },
	}
	//lint:ignore errlint lenient by design: errors land in Module.TypeErrors via the handler
	tp, _ := conf.Check(path, c.m.Fset, files, c.m.Info)
	return tp
}
