package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A File is one parsed Go source file.
type File struct {
	// Path is the module-relative, slash-separated file path; it is the
	// path diagnostics print.
	Path string
	// AST is the parsed file (with comments and object resolution).
	AST *ast.File
	// Test reports a _test.go file; several contracts relax inside tests.
	Test bool

	ignores   []ignoreDirective
	malformed []token.Pos
}

// A Package groups the files of one directory.
type Package struct {
	// Rel is the module-relative, slash-separated directory path ("." for
	// the module root). Analyzers scope their contracts on it.
	Rel string
	// Files holds every parsed .go file of the directory, tests included.
	Files []*File
}

// ModuleRoot ascends from dir to the nearest directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// skipDir reports directories the loader never descends into: VCS and
// editor state, vendored code, and testdata (which holds intentionally
// violating lint fixtures).
func skipDir(name string) bool {
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
		name == "testdata" || name == "vendor" || name == "node_modules"
}

// LoadModule parses every package under the module root and returns them
// sorted by relative path. Parse failures abort the load: a tree that does
// not parse cannot be meaningfully linted.
func LoadModule(root string) ([]*Package, *token.FileSet, error) {
	fset := token.NewFileSet()
	byDir := map[string]*Package{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		dir := "."
		if i := strings.LastIndex(rel, "/"); i >= 0 {
			dir = rel[:i]
		}
		f, err := parseFile(fset, path, rel)
		if err != nil {
			return err
		}
		pkg := byDir[dir]
		if pkg == nil {
			pkg = &Package{Rel: dir}
			byDir[dir] = pkg
		}
		pkg.Files = append(pkg.Files, f)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	pkgs := make([]*Package, 0, len(byDir))
	for _, pkg := range byDir {
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Rel < pkgs[j].Rel })
	return pkgs, fset, nil
}

// LoadDir parses the .go files directly inside dir into one package whose
// module-relative path is forced to rel. The lint tests use it to present
// testdata fixtures to the analyzers as if they lived at a scoped path
// such as "internal/cpu".
func LoadDir(fset *token.FileSet, dir, rel string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Rel: rel}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := e.Name()
		virtual := name
		if rel != "." {
			virtual = rel + "/" + name
		}
		f, err := parseFile(fset, filepath.Join(dir, name), virtual)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	return pkg, nil
}

// parseFile parses one source file, registering it in fset under its
// module-relative path so diagnostics position themselves portably.
func parseFile(fset *token.FileSet, osPath, rel string) (*File, error) {
	src, err := os.ReadFile(osPath)
	if err != nil {
		return nil, err
	}
	astFile, err := parser.ParseFile(fset, rel, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	f := &File{
		Path: rel,
		AST:  astFile,
		Test: strings.HasSuffix(rel, "_test.go"),
	}
	f.ignores, f.malformed = parseIgnores(fset, astFile)
	return f, nil
}
