package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A File is one parsed Go source file.
type File struct {
	// Path is the module-relative, slash-separated file path; it is the
	// path diagnostics print.
	Path string
	// AST is the parsed file (with comments and object resolution).
	AST *ast.File
	// Test reports a _test.go file; several contracts relax inside tests.
	Test bool

	ignores   []ignoreDirective
	malformed []token.Pos
}

// A Package groups the files of one directory.
type Package struct {
	// Rel is the module-relative, slash-separated directory path ("." for
	// the module root). Analyzers scope their contracts on it.
	Rel string
	// Files holds every parsed .go file of the directory, tests included.
	Files []*File
}

// AuxFiles are the non-Go module inputs some analyzers cross-reference:
// varslint reads the DESIGN.md counter table, racecover reads the ci.sh
// race-stage package list, and wirelint reads the pinned wire contract.
// LoadModule loads whichever of them exist; fixture modules inject them.
var AuxFiles = []string{"DESIGN.md", "scripts/ci.sh", "api/contract.lock"}

// A Module is one loaded, parsed and type-checked analysis target: the
// whole repository for cmd/smtlint and TestModuleIsClean, or a single
// fixture package in the analyzer tests.
type Module struct {
	Fset *token.FileSet
	// Pkgs holds every package, sorted by Rel.
	Pkgs []*Package
	// Root is the OS path of the module root ("" for fixture modules).
	Root string
	// Path is the module import path from go.mod ("" for fixture modules,
	// whose files may only import the standard library).
	Path string
	// Info is the merged go/types information for every file of every
	// package. It is never nil, but may be incomplete where type checking
	// failed (analyzers must tolerate missing entries).
	Info *types.Info
	// TypeErrors collects type-check errors. The build stage guarantees a
	// compiling tree, so on the real module this stays empty; fixture
	// modules may carry residue (unresolvable imports) by design.
	TypeErrors []error
	// Aux maps an AuxFiles name to its content; absent files are absent
	// keys.
	Aux map[string][]byte
}

// Aux returns the named auxiliary input, if loaded.
func (m *Module) aux(name string) ([]byte, bool) {
	b, ok := m.Aux[name]
	return b, ok
}

// ModuleRoot ascends from dir to the nearest directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module import path from a go.mod file.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// skipDir reports directories the loader never descends into: VCS and
// editor state, vendored code, and testdata (which holds intentionally
// violating lint fixtures).
func skipDir(name string) bool {
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
		name == "testdata" || name == "vendor" || name == "node_modules"
}

// LoadModule parses every package under the module root, type-checks the
// lot (standard-library imports resolved from source, module-internal
// imports resolved from the parsed packages themselves), loads the
// auxiliary inputs, and returns the assembled Module. Parse failures abort
// the load: a tree that does not parse cannot be meaningfully linted.
// Type-check failures do not abort — they land in TypeErrors and the
// analyzers degrade to the syntax they can still see.
func LoadModule(root string) (*Module, error) {
	fset := token.NewFileSet()
	byDir := map[string]*Package{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		dir := "."
		if i := strings.LastIndex(rel, "/"); i >= 0 {
			dir = rel[:i]
		}
		f, err := parseFile(fset, path, rel)
		if err != nil {
			return err
		}
		if buildExcluded(f.AST) {
			return nil
		}
		pkg := byDir[dir]
		if pkg == nil {
			pkg = &Package{Rel: dir}
			byDir[dir] = pkg
		}
		pkg.Files = append(pkg.Files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}

	pkgs := make([]*Package, 0, len(byDir))
	for _, pkg := range byDir {
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Rel < pkgs[j].Rel })

	m := &Module{Fset: fset, Pkgs: pkgs, Root: root, Aux: map[string][]byte{}}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m.Path = modulePath(gomod)
	for _, name := range AuxFiles {
		if b, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(name))); err == nil {
			m.Aux[name] = b
		}
	}
	typeCheck(m)
	return m, nil
}

// Fixture assembles a Module around already-loaded fixture packages and
// type-checks them. Fixture files may import only the standard library;
// aux may inject DESIGN.md / ci.sh / contract.lock stand-ins (nil is an
// empty aux set).
func Fixture(fset *token.FileSet, aux map[string][]byte, pkgs ...*Package) *Module {
	if aux == nil {
		aux = map[string][]byte{}
	}
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Rel < sorted[j].Rel })
	m := &Module{Fset: fset, Pkgs: sorted, Aux: aux}
	typeCheck(m)
	return m
}

// LoadDir parses the .go files directly inside dir into one package whose
// module-relative path is forced to rel. The lint tests use it to present
// testdata fixtures to the analyzers as if they lived at a scoped path
// such as "internal/cpu".
func LoadDir(fset *token.FileSet, dir, rel string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Rel: rel}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := e.Name()
		virtual := name
		if rel != "." {
			virtual = rel + "/" + name
		}
		f, err := parseFile(fset, filepath.Join(dir, name), virtual)
		if err != nil {
			return nil, err
		}
		if buildExcluded(f.AST) {
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	return pkg, nil
}

// buildExcluded reports whether a //go:build constraint excludes the file
// from the default build configuration the checker models (current
// GOOS/GOARCH, no extra tags such as race). Excluded files belong to a
// different build: merging them into the type-check unit would mis-model
// it — race/norace twin files, for instance, redeclare the same symbol.
func buildExcluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(defaultBuildTag) {
				return true
			}
		}
	}
	return false
}

// defaultBuildTag answers constraint tags for the default configuration.
func defaultBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, runtime.Compiler:
		return true
	case "unix":
		return runtime.GOOS == "linux" || runtime.GOOS == "darwin"
	}
	return strings.HasPrefix(tag, "go1.") // the toolchain is current
}

// parseFile parses one source file, registering it in fset under its
// module-relative path so diagnostics position themselves portably.
func parseFile(fset *token.FileSet, osPath, rel string) (*File, error) {
	src, err := os.ReadFile(osPath)
	if err != nil {
		return nil, err
	}
	astFile, err := parser.ParseFile(fset, rel, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	f := &File{
		Path: rel,
		AST:  astFile,
		Test: strings.HasSuffix(rel, "_test.go"),
	}
	f.ignores, f.malformed = parseIgnores(fset, astFile)
	return f, nil
}
