// Package fault is a deterministic, schedule-driven fault injector for the
// advisor's chaos tests. A Schedule (loadable from JSON) names operations
// in the serving path — probe simulations, recommendation-cache lookups —
// and attaches probabilistic rules that delay, fail or hang them. Every
// decision is a pure function of (schedule seed, operation, per-operation
// call index): under any goroutine interleaving the i-th probe always
// receives the same injected action, so a chaos run is exactly repeatable
// given its schedule and the set of injected faults can be pinned in a
// golden test.
//
// The injector sits behind the interfaces the server already crosses: the
// probe function (internal/server → internal/controller) and the cache
// (internal/server). A nil *Injector is valid everywhere and injects
// nothing, so production builds pay one nil check per instrumented call.
package fault

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/xrand"
)

// Operations instrumented by the serving path.
const (
	// OpProbe guards one analyze probe (the simulated measurement run).
	OpProbe = "probe"
	// OpCacheGet guards one recommendation-cache lookup; an injected error
	// is observed as a cache miss, an injected hang as a slow lookup.
	OpCacheGet = "cache.get"
	// OpCacheAdd guards one recommendation-cache insert; an injected error
	// drops the insert.
	OpCacheAdd = "cache.add"
	// OpRoute guards one routing decision in the fleet router
	// (internal/router); an injected error fails the request before any
	// shard is contacted — a sick ring as seen by a client.
	OpRoute = "route"
	// OpForward guards one forward hop from the router to a shard; an
	// injected error is observed as that shard failing, driving the
	// replica-fallback path without killing a real process.
	OpForward = "forward"
)

// Injection modes.
const (
	// ModeDelay sleeps before letting the operation proceed.
	ModeDelay = "delay"
	// ModeError fails the operation immediately with ErrInjected.
	ModeError = "error"
	// ModeHang blocks until the caller's context is done, then returns the
	// context's error — a stuck dependency as seen through a deadline.
	ModeHang = "hang"
)

// ErrInjected is the error returned by ModeError injections (and wrapped
// into every injected failure), so tests and handlers can tell injected
// faults from organic ones.
var ErrInjected = errors.New("fault: injected error")

// Rule attaches one fault mode to an operation. Rules are evaluated in
// schedule order; the first rule that matches an eligible call and wins
// its probability draw decides the action.
type Rule struct {
	// Op names the instrumented operation (the Op* constants).
	Op string `json:"op"`
	// Mode is the injected behaviour (the Mode* constants).
	Mode string `json:"mode"`
	// Prob is the per-call injection probability in [0, 1].
	Prob float64 `json:"prob"`
	// DelayMS and JitterMS shape ModeDelay: the injected latency is
	// DelayMS plus a uniform draw over [0, JitterMS] milliseconds.
	DelayMS  int `json:"delayMs,omitempty"`
	JitterMS int `json:"jitterMs,omitempty"`
	// After skips the rule for the first After calls of Op; Count then
	// bounds how many further calls the rule stays eligible for
	// (0 = unbounded).
	After int `json:"after,omitempty"`
	Count int `json:"count,omitempty"`
}

func (r *Rule) validate(i int) error {
	switch r.Op {
	case OpProbe, OpCacheGet, OpCacheAdd, OpRoute, OpForward:
	default:
		return fmt.Errorf("fault: rule %d: unknown op %q", i, r.Op)
	}
	switch r.Mode {
	case ModeDelay, ModeError, ModeHang:
	default:
		return fmt.Errorf("fault: rule %d: unknown mode %q", i, r.Mode)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("fault: rule %d: prob %v outside [0, 1]", i, r.Prob)
	}
	if r.DelayMS < 0 || r.JitterMS < 0 {
		return fmt.Errorf("fault: rule %d: negative delay", i)
	}
	if r.After < 0 || r.Count < 0 {
		return fmt.Errorf("fault: rule %d: negative after/count", i)
	}
	return nil
}

// Schedule is a complete, seedable fault plan.
type Schedule struct {
	// Seed drives every probability and jitter draw.
	Seed uint64 `json:"seed"`
	// Rules are evaluated in order per call; first match wins.
	Rules []Rule `json:"rules"`
}

// Validate checks every rule.
func (s *Schedule) Validate() error {
	for i := range s.Rules {
		if err := s.Rules[i].validate(i); err != nil {
			return err
		}
	}
	return nil
}

// ParseSchedule decodes and validates a JSON schedule, rejecting unknown
// fields so a typoed rule fails loudly instead of injecting nothing.
func ParseSchedule(data []byte) (*Schedule, error) {
	var s Schedule
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fault: parsing schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSchedule reads and parses a schedule file.
func LoadSchedule(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return ParseSchedule(data)
}

// Action is one injection decision. The zero Action means "no fault".
type Action struct {
	// Mode is "" for no injection, else one of the Mode* constants.
	Mode string
	// Delay is the injected latency for ModeDelay.
	Delay time.Duration
}

// Injector hands out deterministic fault decisions for a schedule.
// All methods are safe for concurrent use and safe on a nil receiver
// (a nil Injector injects nothing).
type Injector struct {
	sched Schedule

	mu    sync.Mutex
	calls map[string]uint64 // per-op call index, next to assign
	hits  map[string]uint64 // "op/mode" → injected count, for observability
}

// NewInjector builds an injector for a validated schedule. A nil schedule
// yields a nil injector (inject nothing), so callers can pass through an
// optional configuration directly.
func NewInjector(s *Schedule) *Injector {
	if s == nil {
		return nil
	}
	return &Injector{
		sched: *s,
		calls: make(map[string]uint64),
		hits:  make(map[string]uint64),
	}
}

// DecideAt returns the action for the idx-th call (0-based) of op. It is a
// pure function of (schedule, op, idx) — the golden-schedule test and
// Decide share it.
func (in *Injector) DecideAt(op string, idx uint64) Action {
	if in == nil {
		return Action{}
	}
	// One generator per (seed, op, idx): decisions are independent of the
	// interleaving of other operations and of prior draws.
	r := xrand.New(in.sched.Seed ^ xrand.Mix64(xrand.HashString(op)^xrand.Mix64(idx)))
	for i := range in.sched.Rules {
		rule := &in.sched.Rules[i]
		if rule.Op != op {
			continue
		}
		if idx < uint64(rule.After) {
			continue
		}
		if rule.Count > 0 && idx >= uint64(rule.After+rule.Count) {
			continue
		}
		// Every eligible rule consumes exactly one draw whether or not it
		// fires, so a rule's outcome does not depend on how earlier rules
		// in the list were bounded.
		draw := r.Float64()
		if draw >= rule.Prob {
			continue
		}
		a := Action{Mode: rule.Mode}
		if rule.Mode == ModeDelay {
			d := time.Duration(rule.DelayMS) * time.Millisecond
			if rule.JitterMS > 0 {
				d += time.Duration(r.Float64() * float64(rule.JitterMS) * float64(time.Millisecond))
			}
			a.Delay = d
		}
		return a
	}
	return Action{}
}

// Decide assigns op its next call index and returns the scheduled action,
// recording injected actions in the observability counters.
func (in *Injector) Decide(op string) Action {
	if in == nil {
		return Action{}
	}
	in.mu.Lock()
	idx := in.calls[op]
	in.calls[op] = idx + 1
	in.mu.Unlock()
	a := in.DecideAt(op, idx)
	if a.Mode != "" {
		in.mu.Lock()
		in.hits[op+"/"+a.Mode]++
		in.mu.Unlock()
	}
	return a
}

// Inject executes the next scheduled action for op: it returns nil
// immediately (no fault), sleeps through an injected delay (honouring
// ctx), fails with an error wrapping ErrInjected, or hangs until ctx is
// done and returns its error.
func (in *Injector) Inject(ctx context.Context, op string) error {
	if in == nil {
		return nil
	}
	a := in.Decide(op)
	switch a.Mode {
	case ModeDelay:
		t := time.NewTimer(a.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("%w: delay cut short: %w", ErrInjected, ctx.Err())
		}
	case ModeError:
		return fmt.Errorf("%w (%s call %d)", ErrInjected, op, in.callCount(op)-1)
	case ModeHang:
		<-ctx.Done()
		return fmt.Errorf("%w: hang: %w", ErrInjected, ctx.Err())
	}
	return nil
}

// callCount returns how many calls of op have been decided so far.
func (in *Injector) callCount(op string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[op]
}

// Counts returns the injected-fault counters keyed "op/mode", plus the
// per-op call totals keyed "op/calls", in a fresh map for the metrics
// endpoint. Returns nil on a nil injector.
func (in *Injector) Counts() map[string]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.hits)+len(in.calls))
	for k, v := range in.hits {
		out[k] = v
	}
	for op, n := range in.calls {
		out[op+"/calls"] = n
	}
	return out
}

// Summary renders the counters as one sorted, human-readable line for
// logs: "cache.get/calls=12 probe/delay=3 ...".
func (in *Injector) Summary() string {
	counts := in.Counts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", k, counts[k])
	}
	return out
}
