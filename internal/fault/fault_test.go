package fault

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden injected-sequence file")

func testSchedule() *Schedule {
	return &Schedule{
		Seed: 42,
		Rules: []Rule{
			{Op: OpProbe, Mode: ModeDelay, Prob: 0.5, DelayMS: 5, JitterMS: 10},
			{Op: OpProbe, Mode: ModeError, Prob: 0.25},
			{Op: OpCacheGet, Mode: ModeError, Prob: 0.3},
		},
	}
}

// TestDecideDeterministic: the same schedule replayed twice — including a
// concurrent replay — yields the identical action for every (op, index).
func TestDecideDeterministic(t *testing.T) {
	const n = 200
	a := NewInjector(testSchedule())
	b := NewInjector(testSchedule())
	var seqA []Action
	for i := 0; i < n; i++ {
		seqA = append(seqA, a.Decide(OpProbe))
	}
	// Drive b's counter from many goroutines: indices are assigned in an
	// arbitrary order, but DecideAt is index-pure, so the per-index action
	// set must match a serial replay.
	var wg sync.WaitGroup
	seqB := make([]Action, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seqB[i] = b.DecideAt(OpProbe, uint64(i))
		}(i)
	}
	wg.Wait()
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("index %d: serial %+v != concurrent %+v", i, seqA[i], seqB[i])
		}
	}
	// Distinct ops draw from independent streams: cache decisions must not
	// perturb probe decisions.
	c := NewInjector(testSchedule())
	for i := 0; i < 50; i++ {
		c.Decide(OpCacheGet)
	}
	for i := 0; i < n; i++ {
		if got := c.Decide(OpProbe); got != seqA[i] {
			t.Fatalf("probe index %d changed after cache traffic: %+v != %+v", i, got, seqA[i])
		}
	}
}

// goldenAction is the JSON shape of one entry in the golden sequence.
type goldenAction struct {
	Mode    string `json:"mode"`
	DelayNS int64  `json:"delayNs"`
}

// TestScheduleGoldenRoundTrip loads the checked-in JSON schedule and pins
// the first 64 injected probe decisions against the golden file: the wire
// format round-trips and the seeded sequence never drifts.
func TestScheduleGoldenRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "schedule.json"))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := ParseSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	// Round trip: marshal → parse → identical schedule.
	re, err := json.Marshal(sched)
	if err != nil {
		t.Fatal(err)
	}
	sched2, err := ParseSchedule(re)
	if err != nil {
		t.Fatalf("re-parsing marshalled schedule: %v", err)
	}
	if sched2.Seed != sched.Seed || len(sched2.Rules) != len(sched.Rules) {
		t.Fatalf("schedule did not round-trip: %+v vs %+v", sched2, sched)
	}
	for i := range sched.Rules {
		if sched2.Rules[i] != sched.Rules[i] {
			t.Fatalf("rule %d did not round-trip: %+v vs %+v", i, sched2.Rules[i], sched.Rules[i])
		}
	}

	in := NewInjector(sched)
	var got []goldenAction
	for i := 0; i < 64; i++ {
		a := in.Decide(OpProbe)
		got = append(got, goldenAction{Mode: a.Mode, DelayNS: int64(a.Delay)})
	}
	goldenPath := filepath.Join("testdata", "golden_sequence.json")
	if *update {
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var wantSeq []goldenAction
	if err := json.Unmarshal(want, &wantSeq); err != nil {
		t.Fatal(err)
	}
	if len(wantSeq) != len(got) {
		t.Fatalf("golden sequence length %d, got %d", len(wantSeq), len(got))
	}
	for i := range got {
		if got[i] != wantSeq[i] {
			t.Errorf("probe call %d: injected %+v, golden %+v", i, got[i], wantSeq[i])
		}
	}
}

func TestInjectModes(t *testing.T) {
	// error mode
	in := NewInjector(&Schedule{Seed: 1, Rules: []Rule{{Op: OpProbe, Mode: ModeError, Prob: 1}}})
	if err := in.Inject(context.Background(), OpProbe); !errors.Is(err, ErrInjected) {
		t.Fatalf("error mode: err = %v, want ErrInjected", err)
	}
	// delay mode completes and reports no error
	in = NewInjector(&Schedule{Seed: 1, Rules: []Rule{{Op: OpProbe, Mode: ModeDelay, Prob: 1, DelayMS: 1}}})
	start := time.Now()
	if err := in.Inject(context.Background(), OpProbe); err != nil {
		t.Fatalf("delay mode: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay mode did not sleep")
	}
	// hang mode blocks until the context dies
	in = NewInjector(&Schedule{Seed: 1, Rules: []Rule{{Op: OpProbe, Mode: ModeHang, Prob: 1}}})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := in.Inject(ctx, OpProbe)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang mode: err = %v, want ErrInjected wrapping DeadlineExceeded", err)
	}
	// delay mode cut short by the context still surfaces both errors
	in = NewInjector(&Schedule{Seed: 1, Rules: []Rule{{Op: OpProbe, Mode: ModeDelay, Prob: 1, DelayMS: 5000}}})
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	err = in.Inject(ctx2, OpProbe)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cut delay: err = %v", err)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Inject(context.Background(), OpProbe); err != nil {
		t.Fatal(err)
	}
	if a := in.Decide(OpProbe); a.Mode != "" {
		t.Fatalf("nil injector decided %+v", a)
	}
	if in.Counts() != nil {
		t.Fatal("nil injector returned counts")
	}
	if NewInjector(nil) != nil {
		t.Fatal("NewInjector(nil) != nil")
	}
}

func TestAfterCountWindows(t *testing.T) {
	in := NewInjector(&Schedule{Seed: 9, Rules: []Rule{
		{Op: OpProbe, Mode: ModeError, Prob: 1, After: 2, Count: 3},
	}})
	var modes []string
	for i := 0; i < 8; i++ {
		modes = append(modes, in.Decide(OpProbe).Mode)
	}
	want := []string{"", "", ModeError, ModeError, ModeError, "", "", ""}
	for i := range want {
		if modes[i] != want[i] {
			t.Fatalf("call %d: mode %q, want %q (all: %v)", i, modes[i], want[i], modes)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	bad := []Schedule{
		{Rules: []Rule{{Op: "nope", Mode: ModeError, Prob: 1}}},
		{Rules: []Rule{{Op: OpProbe, Mode: "nope", Prob: 1}}},
		{Rules: []Rule{{Op: OpProbe, Mode: ModeError, Prob: 2}}},
		{Rules: []Rule{{Op: OpProbe, Mode: ModeError, Prob: -0.1}}},
		{Rules: []Rule{{Op: OpProbe, Mode: ModeDelay, Prob: 1, DelayMS: -1}}},
		{Rules: []Rule{{Op: OpProbe, Mode: ModeError, Prob: 1, After: -1}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %d accepted: %+v", i, s)
		}
	}
	if _, err := ParseSchedule([]byte(`{"seed":1,"rules":[{"op":"probe","mode":"error","prob":1,"bogus":2}]}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSchedule([]byte(`{"seed":1,"rules":[]}`)); err != nil {
		t.Errorf("empty rule list rejected: %v", err)
	}
}

func TestCountsTracksInjections(t *testing.T) {
	in := NewInjector(&Schedule{Seed: 3, Rules: []Rule{
		{Op: OpProbe, Mode: ModeError, Prob: 1, Count: 2},
	}})
	for i := 0; i < 5; i++ {
		//lint:ignore errlint the injected error is the behaviour under test, counted below
		_ = in.Inject(context.Background(), OpProbe)
	}
	counts := in.Counts()
	if counts["probe/error"] != 2 || counts["probe/calls"] != 5 {
		t.Fatalf("counts %v, want probe/error=2 probe/calls=5", counts)
	}
	if in.Summary() == "" {
		t.Fatal("empty summary with recorded counts")
	}
}
