// Package stats provides the small statistical helpers the evaluation
// needs: means, standard deviations, Pearson correlation (used to reproduce
// the paper's Fig. 2 "no correlation" result), and min/max scans.
package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (0 for fewer than two samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples. It returns 0 when either sample has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: sample length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation of two equal-length
// samples (Pearson correlation of the ranks), robust to monotone but
// non-linear relationships.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: sample length mismatch")
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based fractional ranks of the sample (ties get the
// average of their rank range).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort of indices by value: n is small in this package's use.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && xs[idx[j]] < xs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// MinMax returns the smallest and largest values of a non-empty sample.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// GeoMean returns the geometric mean of a sample of positive values.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: non-positive value in geometric mean")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}
