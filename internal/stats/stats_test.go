package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean([1 2 3]) != 2")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Variance(xs), 4, 1e-12) {
		t.Fatalf("variance %v, want 4", Variance(xs))
	}
	if !almost(StdDev(xs), 2, 1e-12) {
		t.Fatalf("stddev %v, want 2", StdDev(xs))
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("variance of a single sample must be 0")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1, 1e-12) {
		t.Fatalf("r = %v err %v, want 1", r, err)
	}
	neg := []float64{40, 30, 20, 10}
	r, _ = Pearson(xs, neg)
	if !almost(r, -1, 1e-12) {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonNoCorrelation(t *testing.T) {
	rng := xrand.New(1)
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.06 {
		t.Fatalf("independent samples correlate at %v", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{2, 3, 4})
	if err != nil || r != 0 {
		t.Fatalf("r = %v err %v for a constant sample, want 0", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch not detected")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("too-short sample not detected")
	}
}

func TestPearsonBounds(t *testing.T) {
	rng := xrand.New(7)
	if err := quick.Check(func(seed uint64) bool {
		n := int(seed%30) + 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.Float64() * 100
		}
		r, err := Pearson(xs, ys)
		return err == nil && r >= -1-1e-9 && r <= 1+1e-9
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks %v, want %v", got, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{5, 5, 1})
	// The two 5s occupy ranks 2 and 3 -> each gets 2.5.
	if got[0] != 2.5 || got[1] != 2.5 || got[2] != 1 {
		t.Fatalf("ranks with ties %v, want [2.5 2.5 1]", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// A monotone nonlinear relation has Spearman 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	r, err := Spearman(xs, ys)
	if err != nil || !almost(r, 1, 1e-12) {
		t.Fatalf("spearman %v err %v, want 1", r, err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%v, %v, %v)", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatal("MinMax(nil) must return ErrEmpty")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil || !almost(g, 4, 1e-9) {
		t.Fatalf("geomean %v err %v, want 4", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Fatal("geomean of zero must fail")
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Fatal("geomean of empty must be ErrEmpty")
	}
}
