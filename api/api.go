// Package api defines the versioned wire contract of the SMT advisor
// service (smtservd): the request and response types of every /v1 endpoint
// and the single error envelope every non-2xx response carries. The server
// (internal/server) and the public client (repro/client) both compile
// against these types, so the JSON contract lives in exactly one place.
//
// # Versioning contract
//
// The endpoint paths carry the major version ("/v1/..."). Within a major
// version the contract only grows: new OPTIONAL response fields (emitted
// with omitempty) and new optional request fields may be added, but
// existing field names, types and JSON spellings never change and required
// fields are never removed. A change that cannot satisfy that rule ships
// as a new path prefix ("/v2/...") with its own types, and v1 keeps
// serving unchanged. Clients must therefore ignore unknown response
// fields; the server, by contrast, rejects unknown request fields so
// misspelled options fail loudly instead of silently doing nothing.
//
// # Degraded answers
//
// A response with Degraded set was produced on the graceful-degradation
// path: either a stale cached recommendation served while the probe path
// was unavailable (circuit breaker open, worker queue saturated, probe
// deadline exceeded) or a recommendation computed from a partial probe cut
// short by the request deadline. Degraded responses also carry an HTTP
// Warning header (code 110 for stale answers, 199 for partial probes) and
// explain themselves in the Warning field. Callers that cannot tolerate an
// approximate answer should retry later; callers driving a live SMT
// reconfiguration loop generally prefer a slightly stale answer over none.
package api

import (
	"fmt"

	"repro/internal/counters"
	"repro/internal/workload"
)

// Version is the wire-contract major version these types describe.
const Version = "v1"

// Endpoint paths served by smtservd for this Version.
const (
	// PathMetric scores a counter snapshot the client measured itself.
	PathMetric = "/v1/metric"
	// PathAnalyze probes a described workload and recommends an SMT level.
	PathAnalyze = "/v1/analyze"
	// PathPlace co-simulates a workload mix and assigns threads to cores.
	PathPlace = "/v1/place"
	// PathHealthz is the liveness/readiness probe (503 while draining).
	PathHealthz = "/healthz"
	// PathVars is the expvar-style metrics document.
	PathVars = "/debug/vars"
)

// MetricRequest scores a counter snapshot the client measured itself — the
// PMU-sampling path of an online optimizer. The snapshot should be an
// interval delta captured at the architecture's maximum SMT level (the only
// level at which the paper shows the metric is trustworthy).
type MetricRequest struct {
	// Arch names the architecture ("power7", "nehalem", "smt8"); empty
	// uses the server default.
	Arch string `json:"arch,omitempty"`
	// Threshold overrides the server's decision threshold when > 0.
	Threshold float64 `json:"threshold,omitempty"`
	// Snapshot is the counter observation to score.
	Snapshot counters.Snapshot `json:"snapshot"`
}

// AnalyzeRequest asks the server to probe a described workload on the
// simulated machine and recommend an SMT level for it. Exactly one of
// Bench (a built-in Table-I benchmark name) or Spec (an inline custom
// workload) must be set.
type AnalyzeRequest struct {
	Arch      string         `json:"arch,omitempty"`
	Chips     int            `json:"chips,omitempty"`
	Bench     string         `json:"bench,omitempty"`
	Spec      *workload.Spec `json:"spec,omitempty"`
	Seed      uint64         `json:"seed,omitempty"`
	Threshold float64        `json:"threshold,omitempty"`
}

// Term is one observed mix-term fraction against its architectural ideal.
type Term struct {
	Name     string  `json:"name"`
	Observed float64 `json:"observed"`
	Ideal    float64 `json:"ideal"`
}

// Recommendation is the advisor's answer: the decision plus the full
// metric breakdown behind it.
type Recommendation struct {
	Arch string `json:"arch"`
	// MeasuredLevel is the SMT level the observation was taken at (for
	// analyze probes, always the architecture's maximum).
	MeasuredLevel int `json:"measuredLevel"`
	// RecommendedLevel is the advised SMT level: one exposed level below
	// MeasuredLevel when the metric exceeds the threshold, otherwise
	// MeasuredLevel itself.
	RecommendedLevel int `json:"recommendedLevel"`
	// LowerSMT is the paper's decision bit: metric > threshold.
	LowerSMT  bool    `json:"lowerSMT"`
	Threshold float64 `json:"threshold"`

	Metric       float64 `json:"metric"`
	MixDeviation float64 `json:"mixDeviation"`
	DispHeld     float64 `json:"dispHeld"`
	Scalability  float64 `json:"scalability"`
	Terms        []Term  `json:"terms"`

	// WallCycles and Bench are set on analyze responses.
	WallCycles int64  `json:"wallCycles,omitempty"`
	Bench      string `json:"bench,omitempty"`

	// Warning flags observations the metric cannot be trusted on (a
	// snapshot measured below the maximum SMT level — paper Figs. 11-12)
	// and, on degraded answers, explains why the answer is degraded.
	Warning string `json:"warning,omitempty"`
	// Fingerprint is the canonical identity of the scored observation, for
	// client-side correlation with the cache.
	Fingerprint string `json:"fingerprint"`
	// Cached reports that the recommendation was served from the LRU.
	Cached bool `json:"cached"`
	// Degraded marks an answer produced on the graceful-degradation path:
	// a stale cached recommendation or a partial probe (see the package
	// comment). Absent on every fresh answer.
	Degraded bool `json:"degraded,omitempty"`
}

// PlaceWorkload names one workload of a placement mix. Exactly one of
// Bench (a built-in Table-I benchmark name) or Spec (an inline custom
// workload) must be set. Threads is the number of placement units the
// workload contributes; 0 means 1.
type PlaceWorkload struct {
	Name    string         `json:"name"`
	Bench   string         `json:"bench,omitempty"`
	Spec    *workload.Spec `json:"spec,omitempty"`
	Threads int            `json:"threads,omitempty"`
}

// AffinityRule forbids co-locating any thread of workload A with any
// thread of workload B on the same core. A rule with A == B forbids the
// workload's own threads from sharing a core with each other.
type AffinityRule struct {
	A string `json:"a"`
	B string `json:"b"`
}

// PlaceRequest asks the server to co-simulate a workload mix and assign
// every thread to a core of the target machine shape.
type PlaceRequest struct {
	Arch  string `json:"arch,omitempty"`
	Chips int    `json:"chips,omitempty"`
	// MaxPerCore caps the threads sharing one core; 0 means the
	// architecture's maximum SMT width, and it may not exceed it.
	MaxPerCore int `json:"maxPerCore,omitempty"`
	// Seed drives the co-simulations and the solver's tie-breaking
	// order. The same request (any field order) with the same seed
	// yields a byte-identical response.
	Seed         uint64          `json:"seed,omitempty"`
	AntiAffinity []AffinityRule  `json:"antiAffinity,omitempty"`
	Workloads    []PlaceWorkload `json:"workloads"`
}

// PairScore is the co-run compatibility of one workload pair: the
// SMT-selection metric of the pair sharing one core, higher meaning more
// contention (worse to co-locate). A == B scores the workload against a
// second thread of itself.
type PairScore struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	Score      float64 `json:"score"`
	WallCycles int64   `json:"wallCycles"`
}

// Assignment is the thread set placed on one core. Core is the core
// index within Chip; Threads lists the owning workload of each placed
// thread, sorted by name.
type Assignment struct {
	Chip    int      `json:"chip"`
	Core    int      `json:"core"`
	Threads []string `json:"threads"`
}

// PlaceResponse is the advisor's placement: one Assignment per occupied
// core plus the pair-compatibility scores the solver minimized.
type PlaceResponse struct {
	Arch  string `json:"arch"`
	Chips int    `json:"chips"`
	// SMTLevel is the architecture's maximum SMT width (the level every
	// pair co-run was scored at); MaxPerCore is the effective cap the
	// solver honored.
	SMTLevel   int `json:"smtLevel"`
	MaxPerCore int `json:"maxPerCore"`
	// TotalScore is the sum of pair scores across all co-located thread
	// pairs — the objective the solver minimized.
	TotalScore  float64      `json:"totalScore"`
	Assignments []Assignment `json:"assignments"`
	PairScores  []PairScore  `json:"pairScores"`

	// Warning, Fingerprint, Cached and Degraded carry the same
	// degradation contract as Recommendation: Fingerprint identifies the
	// canonical resolved request, Degraded marks stale or partial
	// answers (HTTP Warning 110 / 199).
	Warning     string `json:"warning,omitempty"`
	Fingerprint string `json:"fingerprint"`
	Cached      bool   `json:"cached"`
	Degraded    bool   `json:"degraded,omitempty"`
}

// Machine-readable error codes carried by the Error envelope. Clients
// branch on the code; the message is for humans and its wording is not
// part of the contract.
const (
	// CodeBadRequest: the request is malformed or fails validation; fix
	// the request — retrying it unchanged cannot succeed.
	CodeBadRequest = "bad_request"
	// CodeRateLimited: every worker and queue slot is occupied; back off
	// and retry (the response carries Retry-After).
	CodeRateLimited = "rate_limited"
	// CodeQueueTimeout: the request's deadline expired while it waited for
	// a worker; retryable.
	CodeQueueTimeout = "queue_timeout"
	// CodeProbeTimeout: the probe exceeded the per-request budget and no
	// degraded answer was available; retryable.
	CodeProbeTimeout = "probe_timeout"
	// CodeProbeFailed: the probe failed for a non-deadline reason;
	// not retryable (the same probe will fail again).
	CodeProbeFailed = "probe_failed"
	// CodeBreakerOpen: the probe circuit breaker is open and no degraded
	// answer was available; back off and retry after the cooldown.
	CodeBreakerOpen = "breaker_open"
	// CodeInternal: the server failed to build its own response.
	CodeInternal = "internal"
	// CodeNoShards: the fleet router (smtrouter) exhausted every replica
	// shard for the request's key — shards down, unreachable or all
	// shedding; back off and retry after the shard cooldown.
	CodeNoShards = "no_healthy_shards"
)

// Error is the single envelope every non-2xx response body carries. It
// doubles as the Go error type the client returns for server-reported
// failures.
type Error struct {
	// Message is the human-readable description.
	Message string `json:"error"`
	// Code is the machine-readable error class (the Code* constants).
	Code string `json:"code"`

	// Status is the HTTP status the envelope arrived with. It is set by
	// the client, never serialized.
	Status int `json:"-"`
	// RetryAfter is the server's Retry-After hint, when present. Set by
	// the client, never serialized.
	RetryAfter int `json:"-"`
}

// Error satisfies the error interface.
func (e *Error) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("api: %s (code=%s, status=%d)", e.Message, e.Code, e.Status)
	}
	return fmt.Sprintf("api: %s (code=%s)", e.Message, e.Code)
}

// Retryable reports whether the error class can succeed on a later
// attempt without changing the request.
func (e *Error) Retryable() bool {
	switch e.Code {
	case CodeRateLimited, CodeQueueTimeout, CodeProbeTimeout, CodeBreakerOpen, CodeNoShards:
		return true
	}
	// Codes this client version does not know (a newer server) are judged
	// by their status class: 429 and most 5xx are transient.
	switch e.Status {
	case 429, 502, 503, 504:
		return true
	}
	return false
}
