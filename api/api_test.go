package api

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRecommendationWireFormat pins the exact serialized bytes of the v1
// recommendation. This is the versioning contract made executable: any
// rename, reorder or type change of an existing field breaks this test and
// must instead ship as /v2.
func TestRecommendationWireFormat(t *testing.T) {
	rec := Recommendation{
		Arch:             "power7",
		MeasuredLevel:    4,
		RecommendedLevel: 2,
		LowerSMT:         true,
		Threshold:        0.21,
		Metric:           0.5,
		MixDeviation:     0.1,
		DispHeld:         0.2,
		Scalability:      1.5,
		Terms:            []Term{{Name: "load", Observed: 0.25, Ideal: 0.125}},
		WallCycles:       100,
		Bench:            "EP",
		Fingerprint:      "00000000000000ab",
	}
	got, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"arch":"power7","measuredLevel":4,"recommendedLevel":2,` +
		`"lowerSMT":true,"threshold":0.21,"metric":0.5,"mixDeviation":0.1,` +
		`"dispHeld":0.2,"scalability":1.5,` +
		`"terms":[{"name":"load","observed":0.25,"ideal":0.125}],` +
		`"wallCycles":100,"bench":"EP","fingerprint":"00000000000000ab",` +
		`"cached":false}`
	if string(got) != want {
		t.Errorf("recommendation wire format drifted:\n got %s\nwant %s", got, want)
	}

	// The degradation marker and warning are additive omitempty fields:
	// absent above, present only on degraded answers.
	rec.Degraded = true
	rec.Warning = "stale"
	got, err = json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	want = `{"arch":"power7","measuredLevel":4,"recommendedLevel":2,` +
		`"lowerSMT":true,"threshold":0.21,"metric":0.5,"mixDeviation":0.1,` +
		`"dispHeld":0.2,"scalability":1.5,` +
		`"terms":[{"name":"load","observed":0.25,"ideal":0.125}],` +
		`"wallCycles":100,"bench":"EP","warning":"stale",` +
		`"fingerprint":"00000000000000ab","cached":false,"degraded":true}`
	if string(got) != want {
		t.Errorf("degraded wire format drifted:\n got %s\nwant %s", got, want)
	}
}

// TestErrorWireFormat pins the error envelope: message under "error" (the
// pre-v1.1 key, kept for compatibility) plus the machine-readable "code".
// Status and RetryAfter are client-side annotations and never serialize.
func TestErrorWireFormat(t *testing.T) {
	e := Error{Message: "worker queue full, retry later", Code: CodeRateLimited,
		Status: 429, RetryAfter: 1}
	got, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":"worker queue full, retry later","code":"rate_limited"}`
	if string(got) != want {
		t.Errorf("error envelope drifted:\n got %s\nwant %s", got, want)
	}
}

func TestErrorRetryable(t *testing.T) {
	cases := []struct {
		e    Error
		want bool
	}{
		{Error{Code: CodeRateLimited}, true},
		{Error{Code: CodeQueueTimeout}, true},
		{Error{Code: CodeProbeTimeout}, true},
		{Error{Code: CodeBreakerOpen}, true},
		{Error{Code: CodeBadRequest, Status: 400}, false},
		{Error{Code: CodeProbeFailed, Status: 500}, false},
		{Error{Code: CodeInternal, Status: 500}, false},
		// Unknown codes fall back to the status class.
		{Error{Code: "future_code", Status: 503}, true},
		{Error{Code: "future_code", Status: 418}, false},
	}
	for _, tc := range cases {
		if got := tc.e.Retryable(); got != tc.want {
			t.Errorf("Retryable(%+v) = %v, want %v", tc.e, got, tc.want)
		}
	}
}

// TestRequestRoundTrip checks the request types survive a marshal/unmarshal
// cycle with strict decoding — the same DisallowUnknownFields the server
// applies.
func TestRequestRoundTrip(t *testing.T) {
	in := AnalyzeRequest{Arch: "nehalem", Chips: 2, Bench: "EP", Seed: 7, Threshold: 0.3}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out AnalyzeRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("analyze round trip: got %+v, want %+v", out, in)
	}
}

// TestPlaceRequestWireFormat pins the serialized bytes of the v1 placement
// request, and checks it survives the server's strict decode unchanged.
func TestPlaceRequestWireFormat(t *testing.T) {
	req := PlaceRequest{
		Arch:       "power7",
		Chips:      2,
		MaxPerCore: 2,
		Seed:       7,
		AntiAffinity: []AffinityRule{
			{A: "ep", B: "cg"},
		},
		Workloads: []PlaceWorkload{
			{Name: "ep", Bench: "EP", Threads: 2},
			{Name: "cg", Bench: "CG"},
		},
	}
	got, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"arch":"power7","chips":2,"maxPerCore":2,"seed":7,` +
		`"antiAffinity":[{"a":"ep","b":"cg"}],` +
		`"workloads":[{"name":"ep","bench":"EP","threads":2},` +
		`{"name":"cg","bench":"CG"}]}`
	if string(got) != want {
		t.Errorf("place request wire format drifted:\n got %s\nwant %s", got, want)
	}

	var out PlaceRequest
	dec := json.NewDecoder(bytes.NewReader(got))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
	rt, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(rt) != want {
		t.Errorf("place request round trip drifted:\n got %s\nwant %s", rt, want)
	}
}

// TestPlaceResponseWireFormat pins the serialized bytes of the v1
// placement response, fresh and degraded.
func TestPlaceResponseWireFormat(t *testing.T) {
	resp := PlaceResponse{
		Arch:       "power7",
		Chips:      1,
		SMTLevel:   4,
		MaxPerCore: 2,
		TotalScore: 0.75,
		Assignments: []Assignment{
			{Chip: 0, Core: 0, Threads: []string{"cg", "ep"}},
			{Chip: 0, Core: 1, Threads: []string{"ep"}},
		},
		PairScores: []PairScore{
			{A: "cg", B: "ep", Score: 0.75, WallCycles: 1234},
		},
		Fingerprint: "00000000000000cd",
	}
	got, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"arch":"power7","chips":1,"smtLevel":4,"maxPerCore":2,` +
		`"totalScore":0.75,` +
		`"assignments":[{"chip":0,"core":0,"threads":["cg","ep"]},` +
		`{"chip":0,"core":1,"threads":["ep"]}],` +
		`"pairScores":[{"a":"cg","b":"ep","score":0.75,"wallCycles":1234}],` +
		`"fingerprint":"00000000000000cd","cached":false}`
	if string(got) != want {
		t.Errorf("place response wire format drifted:\n got %s\nwant %s", got, want)
	}

	// Warning and Degraded are additive omitempty fields, present only on
	// degraded placements — same contract as Recommendation.
	resp.Warning = "stale"
	resp.Degraded = true
	resp.Cached = true
	got, err = json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	want = `{"arch":"power7","chips":1,"smtLevel":4,"maxPerCore":2,` +
		`"totalScore":0.75,` +
		`"assignments":[{"chip":0,"core":0,"threads":["cg","ep"]},` +
		`{"chip":0,"core":1,"threads":["ep"]}],` +
		`"pairScores":[{"a":"cg","b":"ep","score":0.75,"wallCycles":1234}],` +
		`"warning":"stale",` +
		`"fingerprint":"00000000000000cd","cached":true,"degraded":true}`
	if string(got) != want {
		t.Errorf("degraded place wire format drifted:\n got %s\nwant %s", got, want)
	}
}
