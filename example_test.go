package smtselect_test

import (
	"context"
	"fmt"

	smtselect "repro"
)

// The package-level example: measure a workload's SMT-selection metric and
// apply the paper's decision rule.
func Example() {
	m, err := smtselect.NewPOWER7Machine(1)
	if err != nil {
		panic(err)
	}
	spec, err := smtselect.Workload("EP")
	if err != nil {
		panic(err)
	}
	res, err := smtselect.RunWorkload(context.Background(), m, spec, 42)
	if err != nil {
		panic(err)
	}
	fmt.Println("prefer lower SMT:", smtselect.PredictLowerSMT(res.Metric, 0.21))
	// Output:
	// prefer lower SMT: false
}

// ExampleBestSMTLevel shows the brute-force oracle the metric approximates.
func ExampleBestSMTLevel() {
	spec, err := smtselect.Workload("SPECjbb_contention")
	if err != nil {
		panic(err)
	}
	best, _, err := smtselect.BestSMTLevel(context.Background(), smtselect.POWER7(), 1, spec, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("SMT%d\n", best)
	// Output:
	// SMT1
}

// ExampleMachine_SetSMTLevel demonstrates smtctl-style level switching.
func ExampleMachine_SetSMTLevel() {
	m, err := smtselect.NewPOWER7Machine(1)
	if err != nil {
		panic(err)
	}
	fmt.Println("default:", m.SMTLevel(), "threads:", m.HardwareThreads())
	if err := m.SetSMTLevel(1); err != nil {
		panic(err)
	}
	fmt.Println("after smtctl -t 1:", m.SMTLevel(), "threads:", m.HardwareThreads())
	// Output:
	// default: 4 threads: 32
	// after smtctl -t 1: 1 threads: 8
}

// ExampleWorkloadNames lists a few of the built-in Table-I models.
func ExampleWorkloadNames() {
	names := smtselect.WorkloadNames()
	fmt.Println(names[0], names[len(names)-1], len(names))
	// Output:
	// EP Daytrader 44
}

// ExampleComputeMetric evaluates the metric on a counter snapshot directly,
// the way an OS or user-level scheduler would consume PMU data.
func ExampleComputeMetric() {
	m, err := smtselect.NewNehalemMachine()
	if err != nil {
		panic(err)
	}
	spec, err := smtselect.Workload("Swaptions")
	if err != nil {
		panic(err)
	}
	res, err := smtselect.RunWorkload(context.Background(), m, spec, 42)
	if err != nil {
		panic(err)
	}
	again := smtselect.ComputeMetric(m.Arch(), &res.Counters)
	fmt.Println(again.Value == res.Metric.Value)
	// Output:
	// true
}
