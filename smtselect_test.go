package smtselect_test

import (
	"context"
	"testing"

	smtselect "repro"
)

func TestArchConstructors(t *testing.T) {
	p7 := smtselect.POWER7()
	if p7.Name != "POWER7" || p7.MaxSMT != 4 {
		t.Fatalf("POWER7 desc wrong: %s SMT%d", p7.Name, p7.MaxSMT)
	}
	i7 := smtselect.Nehalem()
	if i7.Name != "Nehalem" || i7.MaxSMT != 2 {
		t.Fatalf("Nehalem desc wrong: %s SMT%d", i7.Name, i7.MaxSMT)
	}
}

func TestMachineConstructors(t *testing.T) {
	m, err := smtselect.NewPOWER7Machine(2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCores() != 16 {
		t.Fatalf("cores %d, want 16", m.NumCores())
	}
	n, err := smtselect.NewNehalemMachine()
	if err != nil {
		t.Fatal(err)
	}
	if n.NumCores() != 4 || n.HardwareThreads() != 8 {
		t.Fatalf("nehalem geometry %d cores / %d threads", n.NumCores(), n.HardwareThreads())
	}
	if _, err := smtselect.NewMachine(smtselect.POWER7(), 0); err == nil {
		t.Fatal("zero chips accepted")
	}
}

func TestWorkloadLookup(t *testing.T) {
	names := smtselect.WorkloadNames()
	if len(names) < 34 {
		t.Fatalf("only %d workloads", len(names))
	}
	if _, err := smtselect.Workload(names[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := smtselect.Workload("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if got := len(smtselect.Workloads()); got != len(names) {
		t.Fatalf("Workloads() returned %d, names %d", got, len(names))
	}
}

func TestDefaultBenchmarkSetsAreCopies(t *testing.T) {
	a := smtselect.DefaultP7Benchmarks()
	b := smtselect.DefaultP7Benchmarks()
	a[0] = "mutated"
	if b[0] == "mutated" {
		t.Fatal("DefaultP7Benchmarks leaks internal state")
	}
	if len(smtselect.DefaultI7Benchmarks()) == 0 {
		t.Fatal("empty i7 set")
	}
}

func TestRunWorkloadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed test")
	}
	m, err := smtselect.NewPOWER7Machine(1)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := smtselect.Workload("Swaptions")
	if err != nil {
		t.Fatal(err)
	}
	res, err := smtselect.RunWorkload(context.Background(), m, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles <= 0 || res.Counters.Retired == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Metric.Value <= 0 {
		t.Fatalf("metric %v, want positive", res.Metric.Value)
	}
	if res.UsefulInstrs <= 0 {
		t.Fatal("no useful instructions recorded")
	}
	// Determinism through the public API.
	res2, err := smtselect.RunWorkload(context.Background(), m, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.WallCycles != res.WallCycles {
		t.Fatalf("non-deterministic: %d vs %d", res.WallCycles, res2.WallCycles)
	}
}

func TestBestSMTLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed test")
	}
	spec, err := smtselect.Workload("EP")
	if err != nil {
		t.Fatal(err)
	}
	best, all, err := smtselect.BestSMTLevel(context.Background(), smtselect.POWER7(), 1, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 {
		t.Fatalf("EP best level SMT%d, want SMT4", best)
	}
	if len(all) != 3 {
		t.Fatalf("%d levels measured, want 3", len(all))
	}
	if all[4].WallCycles >= all[1].WallCycles {
		t.Fatal("SMT4 not faster than SMT1 for EP")
	}
}

func TestPredictLowerSMT(t *testing.T) {
	var met smtselect.Metric
	met.Value = 0.5
	if !smtselect.PredictLowerSMT(met, 0.2) {
		t.Fatal("high metric should predict lower SMT")
	}
	met.Value = 0.1
	if smtselect.PredictLowerSMT(met, 0.2) {
		t.Fatal("low metric should keep SMT")
	}
}

func TestCalibrateSmallSet(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed test")
	}
	// A small but well-conditioned set: two clear SMT winners with low
	// metrics and two clear SMT losers with high metrics.
	cal, err := smtselect.Calibrate(context.Background(), smtselect.POWER7(), 1,
		[]string{"EP", "Blackscholes", "Stream", "SSCA2"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Points) != 4 {
		t.Fatalf("%d calibration points, want 4", len(cal.Points))
	}
	if cal.GiniThreshold <= 0 {
		t.Fatalf("gini threshold %v", cal.GiniThreshold)
	}
	if cal.Accuracy < 0.75 {
		t.Fatalf("calibration accuracy %v", cal.Accuracy)
	}
	if cal.GiniLo > cal.GiniHi {
		t.Fatal("gini range inverted")
	}
}

func TestCalibrateUnknownBench(t *testing.T) {
	if _, err := smtselect.Calibrate(context.Background(), smtselect.POWER7(), 1, []string{"nope"}, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestComputeMetricMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed test")
	}
	m, _ := smtselect.NewPOWER7Machine(1)
	spec, _ := smtselect.Workload("Vips")
	res, err := smtselect.RunWorkload(context.Background(), m, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	again := smtselect.ComputeMetric(m.Arch(), &res.Counters)
	if again.Value != res.Metric.Value {
		t.Fatalf("metric recomputation differs: %v vs %v", again.Value, res.Metric.Value)
	}
}
