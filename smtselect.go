// Package smtselect is the public API of the SMT-selection-metric library,
// a full reproduction of Funston, El Maghraoui, Jann, Pattnaik and Fedorova:
// "An SMT-Selection Metric to Improve Multithreaded Applications'
// Performance" (IPDPS 2012).
//
// The library contains everything the paper's system needs, implemented
// from scratch in pure Go:
//
//   - a cycle-approximate simulator of SMT out-of-order processors with two
//     architecture models — an 8-core, 4-way-SMT POWER7 and a 4-core,
//     2-way-SMT Nehalem Core i7 — including issue ports, partitioned reorder
//     windows, issue queues, branch prediction, stream prefetching, a cache
//     hierarchy and banked DRAM (package internal/cpu and friends);
//   - a synthetic workload suite modelling the paper's Table I benchmarks
//     (NAS, PARSEC, SPEC OMP2001, SSCA2, STREAM, SPECjbb, DayTrader), with a
//     software runtime providing spin locks, blocking locks, barriers,
//     Amdahl phases and I/O sleeps (internal/workload, internal/sched);
//   - the SMT-selection metric itself (internal/smtsm), hardware-counter
//     plumbing (internal/counters), threshold selection by Gini impurity and
//     average-PPI (internal/threshold), and an online SMT-level controller
//     (internal/controller);
//   - drivers reproducing every table and figure of the paper's evaluation
//     (internal/experiments, cmd/experiments).
//
// The quickest path through the API:
//
//	ctx := context.Background()
//	m, _ := smtselect.NewPOWER7Machine(1)                // 8 cores, starts at SMT4
//	spec, _ := smtselect.Workload("EP")
//	res, _ := smtselect.RunWorkload(ctx, m, spec, 42)    // one thread per hw thread
//	fmt.Println(res.Metric.Value)                        // the SMTsm value
//
// and to pick the best SMT level for a workload:
//
//	best, _ := smtselect.BestSMTLevel(ctx, smtselect.POWER7(), 1, spec, 42)
//
// Every entry point that simulates takes a context.Context first: cancel
// it (or attach a deadline) to bound the simulation; results produced
// before the deadline are returned alongside the context error.
package smtselect

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/controller"
	"repro/internal/counters"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/smtsm"
	"repro/internal/threshold"
	"repro/internal/workload"
)

// Re-exported core types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Arch describes a simulated processor architecture.
	Arch = arch.Desc
	// Machine is a simulated multi-chip SMT system.
	Machine = cpu.Machine
	// Counters is a hardware-performance-counter snapshot.
	Counters = counters.Snapshot
	// Metric is an SMT-selection-metric breakdown (value and factors).
	Metric = smtsm.Breakdown
	// WorkloadSpec describes a synthetic multithreaded workload.
	WorkloadSpec = workload.Spec
	// WorkloadInstance is a workload instantiated for a thread count.
	WorkloadInstance = workload.Instance
	// ThresholdPoint is a (metric, speedup) calibration observation.
	ThresholdPoint = threshold.Point
	// Controller is the online SMT-level controller of Section V.
	Controller = controller.Controller
	// ControllerConfig tunes the controller policy.
	ControllerConfig = controller.Config
)

// POWER7 returns the 8-core, SMT1/2/4 POWER7 architecture model (the
// paper's primary evaluation platform).
func POWER7() *Arch { return arch.POWER7() }

// Nehalem returns the 4-core, SMT1/2 Nehalem Core i7 architecture model.
func Nehalem() *Arch { return arch.Nehalem() }

// NewMachine builds a machine with the given architecture and chip count,
// starting at the architecture's deepest SMT level.
func NewMachine(d *Arch, chips int) (*Machine, error) { return cpu.NewMachine(d, chips) }

// NewPOWER7Machine builds a POWER7 machine with the given chip count (the
// paper uses one and two chips).
func NewPOWER7Machine(chips int) (*Machine, error) { return cpu.NewMachine(arch.POWER7(), chips) }

// NewNehalemMachine builds the quad-core Nehalem system.
func NewNehalemMachine() (*Machine, error) { return cpu.NewMachine(arch.Nehalem(), 1) }

// Workload returns a benchmark model from the built-in suite (the paper's
// Table I); see WorkloadNames for the available labels.
func Workload(name string) (*WorkloadSpec, error) { return workload.Get(name) }

// WorkloadNames lists the built-in benchmark models.
func WorkloadNames() []string { return workload.Names() }

// LoadWorkload reads and validates a custom workload spec from a JSON file
// (see internal/workload's JSON format; cmd/smtsim -spec uses the same).
func LoadWorkload(path string) (*WorkloadSpec, error) { return workload.LoadSpecFile(path) }

// GenericSMT8 returns the forward-looking 8-way-SMT architecture model used
// by the portability study.
func GenericSMT8() *Arch { return arch.GenericSMT8() }

// Workloads returns all built-in benchmark models.
func Workloads() []*WorkloadSpec { return workload.All() }

// RunResult is the outcome of running one workload to completion.
type RunResult struct {
	// WallCycles is the run's simulated wall-clock time.
	WallCycles int64
	// Counters is the cumulative counter snapshot after the run.
	Counters Counters
	// Metric is the SMT-selection metric evaluated on the run.
	Metric Metric
	// UsefulInstrs and SpinInstrs split the retired instructions into
	// real work and lock spinning.
	UsefulInstrs, SpinInstrs int64
}

// RunWorkload runs spec on m with one software thread per hardware thread
// (the paper's methodology) and returns the wall time, counters and metric.
// The machine's microarchitectural state is reset first so results are
// comparable across SMT levels.
func RunWorkload(ctx context.Context, m *Machine, spec *WorkloadSpec, seed uint64) (RunResult, error) {
	m.Reset()
	inst, err := workload.Instantiate(spec, m.HardwareThreads(), seed)
	if err != nil {
		return RunResult{}, err
	}
	wall, err := m.RunContext(ctx, inst.Sources(), 0)
	if err != nil {
		return RunResult{}, err
	}
	snap := m.Counters()
	return RunResult{
		WallCycles:   wall,
		Counters:     snap,
		Metric:       smtsm.Compute(m.Arch(), &snap),
		UsefulInstrs: inst.UsefulInstrs(),
		SpinInstrs:   inst.SpinInstrs(),
	}, nil
}

// ComputeMetric evaluates the SMT-selection metric (Eq. 1 of the paper,
// instantiated per architecture as Eqs. 2 and 3) on a counter snapshot.
func ComputeMetric(d *Arch, s *Counters) Metric { return smtsm.Compute(d, s) }

// BestSMTLevel measures spec at every SMT level the architecture exposes
// and returns the level with the shortest wall time, along with the per-
// level results keyed by SMT level. It is the oracle the metric predicts.
func BestSMTLevel(ctx context.Context, d *Arch, chips int, spec *WorkloadSpec, seed uint64) (int, map[int]RunResult, error) {
	m, err := cpu.NewMachine(d, chips)
	if err != nil {
		return 0, nil, err
	}
	results := map[int]RunResult{}
	best, bestWall := 0, int64(0)
	for _, level := range d.SMTLevels {
		if err := m.SetSMTLevel(level); err != nil {
			return 0, nil, err
		}
		res, err := RunWorkload(ctx, m, spec, seed)
		if err != nil {
			return 0, nil, fmt.Errorf("SMT%d: %w", level, err)
		}
		results[level] = res
		if best == 0 || res.WallCycles < bestWall {
			best, bestWall = level, res.WallCycles
		}
	}
	return best, results, nil
}

// PredictLowerSMT applies the paper's decision rule: given the metric
// measured at the architecture's highest SMT level and a calibrated
// threshold, it reports whether the workload should run at a lower SMT
// level.
func PredictLowerSMT(metric Metric, thresholdValue float64) bool {
	return metric.Value > thresholdValue
}

// CalibrationResult carries a calibrated threshold and its quality, as
// produced by the two procedures of the paper's Section V.
type CalibrationResult struct {
	// GiniThreshold is the impurity-minimising separator; GiniLo/GiniHi
	// bound the optimal range, and GiniImpurity is the minimum impurity.
	GiniThreshold, GiniLo, GiniHi, GiniImpurity float64
	// PPIThreshold maximises the expected average performance
	// improvement, PPIBest (in percent).
	PPIThreshold, PPIBest float64
	// Accuracy is the fraction of calibration points the Gini threshold
	// classifies correctly (the paper's "success rate").
	Accuracy float64
	// Points are the underlying observations.
	Points []ThresholdPoint
}

// Calibrate runs every named benchmark at the architecture's highest and
// lowest SMT levels, gathers (metric@highest, speedup) observations, and
// derives thresholds with both of the paper's procedures. This is the
// "representative workload set" calibration of Section V.
func Calibrate(ctx context.Context, d *Arch, chips int, benches []string, seed uint64) (CalibrationResult, error) {
	m, err := cpu.NewMachine(d, chips)
	if err != nil {
		return CalibrationResult{}, err
	}
	hi := d.MaxSMT
	lo := d.SMTLevels[0]
	var pts []threshold.Point
	for _, b := range benches {
		spec, err := workload.Get(b)
		if err != nil {
			return CalibrationResult{}, err
		}
		if err := m.SetSMTLevel(hi); err != nil {
			return CalibrationResult{}, err
		}
		rHi, err := RunWorkload(ctx, m, spec, seed)
		if err != nil {
			return CalibrationResult{}, fmt.Errorf("%s@SMT%d: %w", b, hi, err)
		}
		if err := m.SetSMTLevel(lo); err != nil {
			return CalibrationResult{}, err
		}
		rLo, err := RunWorkload(ctx, m, spec, seed)
		if err != nil {
			return CalibrationResult{}, fmt.Errorf("%s@SMT%d: %w", b, lo, err)
		}
		pts = append(pts, threshold.Point{
			Metric:  rHi.Metric.Value,
			Speedup: float64(rLo.WallCycles) / float64(rHi.WallCycles),
			Label:   b,
		})
	}
	g, err := threshold.GiniSearch(pts)
	if err != nil {
		return CalibrationResult{}, err
	}
	p, err := threshold.PPISearch(pts)
	if err != nil {
		return CalibrationResult{}, err
	}
	return CalibrationResult{
		GiniThreshold: g.Best, GiniLo: g.Lo, GiniHi: g.Hi, GiniImpurity: g.MinImpurity,
		PPIThreshold: p.Best, PPIBest: p.BestPPI,
		Accuracy: threshold.Accuracy(pts, g.Best),
		Points:   pts,
	}, nil
}

// NewController builds the Section V online controller for an architecture.
func NewController(d *Arch, cfg ControllerConfig) (*Controller, error) {
	return controller.New(d, cfg)
}

// RunAdaptive drives a machine through chunked work under controller
// control; see controller.RunAdaptiveContext.
func RunAdaptive(ctx context.Context, m *Machine, ctrl *Controller, src controller.WorkSource, maxCycles int64) ([]controller.IntervalResult, int64, error) {
	return controller.RunAdaptiveContext(ctx, m, ctrl, src, maxCycles)
}

// DefaultP7Benchmarks is the paper's single-chip POWER7 evaluation set.
func DefaultP7Benchmarks() []string {
	out := make([]string, len(experiments.P7Benchmarks))
	copy(out, experiments.P7Benchmarks)
	return out
}

// DefaultI7Benchmarks is the paper's Nehalem evaluation set.
func DefaultI7Benchmarks() []string {
	out := make([]string, len(experiments.I7Benchmarks))
	copy(out, experiments.I7Benchmarks)
	return out
}
