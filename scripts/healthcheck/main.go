// Command healthcheck polls an HTTP endpoint until it answers 200 or the
// deadline expires. CI uses it to smoke-test the smtservd daemon without
// depending on curl being installed.
//
// Usage:
//
//	healthcheck -url http://127.0.0.1:18700/healthz -timeout 10s
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	var (
		url     = flag.String("url", "http://127.0.0.1:18700/healthz", "endpoint to poll")
		timeout = flag.Duration("timeout", 10*time.Second, "give up after this long")
		every   = flag.Duration("every", 100*time.Millisecond, "poll interval")
	)
	flag.Parse()

	deadline := time.Now().Add(*timeout)
	client := &http.Client{Timeout: 2 * time.Second}
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(*url)
		if err == nil {
			body, readErr := io.ReadAll(io.LimitReader(resp.Body, 4096))
			closeErr := resp.Body.Close()
			switch {
			case readErr != nil:
				lastErr = fmt.Errorf("reading response: %w", readErr)
			case closeErr != nil:
				lastErr = fmt.Errorf("closing response: %w", closeErr)
			case resp.StatusCode == http.StatusOK:
				fmt.Printf("healthcheck: %s -> %d %s\n", *url, resp.StatusCode, body)
				return
			default:
				lastErr = fmt.Errorf("status %d: %s", resp.StatusCode, body)
			}
		} else {
			lastErr = err
		}
		time.Sleep(*every)
	}
	fmt.Fprintf(os.Stderr, "healthcheck: %s never became healthy within %v: %v\n",
		*url, *timeout, lastErr)
	os.Exit(1)
}
