#!/usr/bin/env sh
# Run the engine benchmark grid and maintain the benchmark-trajectory
# artifacts (BENCH_PR<n>.json).
#
# Usage:
#   scripts/bench.sh                      # run grid, gate against newest artifact
#   scripts/bench.sh refresh [artifact]   # run grid, write artifact (default BENCH_PR7.json)
#
# The gate judges against the highest-numbered checked-in BENCH_PR<n>.json
# (benchgate baseline); with no artifact at all it fails loudly instead of
# passing vacuously. It compares hardware-neutral event/scan speedup ratios
# (both engines measured in the same run), so it holds on any machine;
# absolute Mcycles/s numbers are recorded in the artifact as the trajectory.
set -eu

mode=${1:-gate}
# The raw bench output lands in the CI artifact dir so a failed gate run
# uploads the numbers it was judging.
artdir=${CI_ARTIFACT_DIR:-$(mktemp -d)}
mkdir -p "$artdir"
out="$artdir/bench.out"

echo "==> benchmark grid (engines x workloads x SMT levels)"
go test -run '^$' -bench 'BenchmarkEngine|BenchmarkSteadyState' \
	-benchtime 2x -count 1 -timeout 40m ./internal/cpu | tee "$out"

case "$mode" in
refresh)
	artifact=${2:-BENCH_PR7.json}
	echo "==> rewriting $artifact"
	go run ./scripts/benchgate emit "$out" >"$artifact"
	echo "wrote $artifact"
	;;
gate)
	baseline=$(go run ./scripts/benchgate baseline)
	echo "==> gating against $baseline"
	go run ./scripts/benchgate check "$baseline" "$out"
	;;
*)
	echo "usage: scripts/bench.sh [refresh [artifact]]" >&2
	exit 2
	;;
esac
