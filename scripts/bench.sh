#!/usr/bin/env sh
# Run the engine benchmark grid and maintain the benchmark-trajectory
# artifact (BENCH_PR4.json).
#
# Usage:
#   scripts/bench.sh            # run grid, gate against checked-in baseline
#   scripts/bench.sh refresh    # run grid, rewrite BENCH_PR4.json
#
# The gate compares hardware-neutral event/scan speedup ratios (both
# engines measured in the same run), so it holds on any machine; absolute
# Mcycles/s numbers are recorded in the artifact as the trajectory.
set -eu

mode=${1:-gate}
baseline="BENCH_PR4.json"
# The raw bench output lands in the CI artifact dir so a failed gate run
# uploads the numbers it was judging.
artdir=${CI_ARTIFACT_DIR:-$(mktemp -d)}
mkdir -p "$artdir"
out="$artdir/bench.out"

echo "==> benchmark grid (engines x workloads x SMT levels)"
go test -run '^$' -bench 'BenchmarkEngine|BenchmarkSteadyState' \
	-benchtime 2x -count 1 -timeout 40m ./internal/cpu | tee "$out"

case "$mode" in
refresh)
	echo "==> rewriting $baseline"
	go run ./scripts/benchgate emit "$out" >"$baseline"
	echo "wrote $baseline"
	;;
gate)
	echo "==> gating against $baseline"
	go run ./scripts/benchgate check "$baseline" "$out"
	;;
*)
	echo "usage: scripts/bench.sh [refresh]" >&2
	exit 2
	;;
esac
