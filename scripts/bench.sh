#!/usr/bin/env sh
# Run the engine benchmark grid and maintain the benchmark-trajectory
# artifacts (BENCH_PR<n>.json).
#
# Usage:
#   scripts/bench.sh                      # run grid, gate against newest artifact
#   scripts/bench.sh refresh [artifact]   # run grid, write artifact (default BENCH_PR9.json)
#   scripts/bench.sh quick <cellglob>     # run a named subset of the grid, no gate
#
# quick runs only the BenchmarkEngine cells matching the glob — e.g.
# `scripts/bench.sh quick 'EP/*'` for all EP levels or
# `scripts/bench.sh quick 'CG/smt4'` for one cell — so a tuning loop
# iterates on the cells it cares about instead of the 30-minute grid.
#
# The gate judges against the highest-numbered checked-in BENCH_PR<n>.json
# (benchgate baseline); with no artifact at all it fails loudly instead of
# passing vacuously. It compares hardware-neutral event/scan speedup ratios
# (both engines measured in the same run), so it holds on any machine;
# absolute Mcycles/s numbers are recorded in the artifact as the trajectory.
# On a gate failure the slowest engine cell is re-run with CPU and memory
# profiling and the pprof files land next to the bench output in the
# artifact dir, so a regression report carries the profile that explains it.
set -eu

mode=${1:-gate}
# The raw bench output lands in the CI artifact dir so a failed gate run
# uploads the numbers it was judging.
artdir=${CI_ARTIFACT_DIR:-$(mktemp -d)}
mkdir -p "$artdir"
out="$artdir/bench.out"

if [ "$mode" = quick ]; then
	glob=${2:?usage: scripts/bench.sh quick <cellglob>   (e.g. 'EP/*' or 'CG/smt4')}
	# Glob -> anchored benchmark regex: '*' spans within a path segment.
	re=$(printf '%s' "$glob" | sed -e 's/[.[\()+?^$|]/\\&/g' -e 's/\*/[^\/]*/g')
	echo "==> quick grid subset: BenchmarkEngine/$glob"
	go test -run '^$' -bench "BenchmarkEngine/${re}$" \
		-benchtime 2x -count 1 -timeout 40m ./internal/cpu | tee "$out"
	exit 0
fi

echo "==> benchmark grid (engines x workloads x SMT levels)"
# 4 iterations per cell: the engines alternate in sub-second slices inside
# each iteration, so more iterations directly average more paired windows
# and the parity-floor cells (EP, MG — structural ratio ~1.02) measure
# stably inside the gate's floor.
go test -run '^$' -bench 'BenchmarkEngine|BenchmarkSteadyState' \
	-benchtime 4x -count 1 -timeout 40m ./internal/cpu | tee "$out"

case "$mode" in
refresh)
	artifact=${2:-BENCH_PR9.json}
	echo "==> rewriting $artifact"
	go run ./scripts/benchgate emit "$out" >"$artifact"
	echo "wrote $artifact"
	;;
gate)
	baseline=$(go run ./scripts/benchgate baseline)
	echo "==> gating against $baseline"
	if ! go run ./scripts/benchgate check "$baseline" "$out"; then
		cell=$(go run ./scripts/benchgate slowest "$out")
		echo "==> gate failed; profiling slowest cell $cell into $artdir"
		go test -run '^$' -bench "BenchmarkEngine/${cell}$" -benchtime 2x -count 1 \
			-timeout 40m -cpuprofile "$artdir/slowest.cpu.pprof" \
			-memprofile "$artdir/slowest.mem.pprof" ./internal/cpu \
			>"$artdir/slowest.bench.out" 2>&1 || true
		echo "profiles: $artdir/slowest.cpu.pprof $artdir/slowest.mem.pprof"
		exit 1
	fi
	;;
*)
	echo "usage: scripts/bench.sh [refresh [artifact] | quick <cellglob>]" >&2
	exit 2
	;;
esac
