#!/usr/bin/env sh
# Wire-contract lock tool for the api package.
#
# Usage:
#   scripts/contract.sh check    # verify api/contract.lock matches the tree (CI)
#   scripts/contract.sh update   # regenerate api/contract.lock (local, deliberate)
#
# The lock pins the v1 wire types' full shape (field names, Go types, json
# tags); wirelint checks the tree against it on every lint run. CI only
# ever checks — the lock changes exclusively through a human running
# `update` and committing the result, which is what makes contract drift
# a reviewed decision instead of an accident.
set -eu

cd "$(dirname "$0")/.."

case "${1:-check}" in
update)
	go run ./cmd/smtlint -write-contract
	;;
check)
	[ -f api/contract.lock ] || {
		echo "contract.sh: api/contract.lock is missing; run scripts/contract.sh update and commit it" >&2
		exit 1
	}
	tmp=$(mktemp)
	trap 'rm -f "$tmp"' EXIT
	go run ./cmd/smtlint -print-contract >"$tmp"
	if ! diff -u api/contract.lock "$tmp"; then
		echo "contract.sh: api/contract.lock is stale; if the wire-contract change is intentional, run scripts/contract.sh update and commit the diff" >&2
		exit 1
	fi
	;;
*)
	echo "contract.sh: unknown subcommand '$1' (want: check or update)" >&2
	exit 2
	;;
esac
