// Command chaosprobe drives a live smtservd instance with concurrent
// retrying clients and verifies the graceful-degradation contract holds
// end to end. CI starts the daemon with a seeded fault schedule
// (-faults scripts/chaos-schedule.json) and then runs this probe against
// it: nearly every request must still be answered — fresh or marked
// degraded — and every degraded answer must carry a warning.
//
// Usage:
//
//	chaosprobe -url http://127.0.0.1:18701 -clients 16 -requests 4
//	chaosprobe -url http://127.0.0.1:18712 -clients 16 -requests 25 -place 4
//
// With -place N each client additionally sends N /v1/place requests from
// a golden placement set, held to the same answered/degraded contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	var (
		baseURL  = flag.String("url", "http://127.0.0.1:18701", "smtservd base URL")
		clients  = flag.Int("clients", 16, "concurrent clients")
		requests = flag.Int("requests", 4, "requests per client")
		keys     = flag.Int("keys", 8, "distinct analyze requests in the golden set")
		seed     = flag.Uint64("seed", 1, "base seed for client backoff jitter")
		minOK    = flag.Float64("min-answered", 0.99, "minimum answered (fresh or degraded) fraction")
		place    = flag.Int("place", 0, "placement (/v1/place) requests per client, on top of -requests")
		settle   = flag.Duration("settle", 100*time.Millisecond, "pause after prewarm so cached answers outlive the server's cache TTL and revalidation probes meet the injected faults")
		timeout  = flag.Duration("timeout", 60*time.Second, "overall budget")
	)
	flag.Parse()
	if err := run(*baseURL, *clients, *requests, *keys, *seed, *minOK, *place, *settle, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "chaosprobe: %v\n", err)
		os.Exit(1)
	}
}

// chaosReq builds the i-th golden analyze request: tiny deterministic
// workloads the simulator finishes in well under any sane request budget.
func chaosReq(i int) api.AnalyzeRequest {
	return api.AnalyzeRequest{
		Spec: &workload.Spec{
			Name: fmt.Sprintf("chaos-%d", i), Mix: workload.Mix{Int: 1},
			Chains: 1, WorkingSetKB: 1, TotalWork: 50_000, IterLen: 100,
		},
		Seed: uint64(100 + i),
	}
}

// placeReq builds the i-th golden placement request: a tiny two-workload
// mix whose pair co-runs complete well inside any sane request budget.
func placeReq(i int) api.PlaceRequest {
	return api.PlaceRequest{
		Workloads: []api.PlaceWorkload{
			{
				Name: fmt.Sprintf("chaos-cpu-%d", i), Threads: 2,
				Spec: &workload.Spec{
					Name: fmt.Sprintf("chaos-cpu-%d", i), Mix: workload.Mix{Int: 1},
					Chains: 1, WorkingSetKB: 1, TotalWork: 50_000, IterLen: 100,
				},
			},
			{
				Name: fmt.Sprintf("chaos-mem-%d", i),
				Spec: &workload.Spec{
					Name: fmt.Sprintf("chaos-mem-%d", i), Mix: workload.Mix{Load: 1, Int: 1},
					Chains: 1, WorkingSetKB: 64, TotalWork: 50_000, IterLen: 100,
				},
			},
		},
		Seed: uint64(200 + i),
	}
}

// run owns the probe's lifetime so main can os.Exit without skipping
// defers.
func run(baseURL string, clients, requests, keys int, seed uint64, minOK float64, place int, settle, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	// Prewarm the golden keys serially so the degradation layer has a
	// last known recommendation for every one of them; the fault
	// schedule's After windows keep this phase clean.
	warm, err := client.New(client.Config{BaseURL: baseURL, Seed: seed})
	if err != nil {
		return err
	}
	for i := 0; i < keys; i++ {
		if _, err := warm.Analyze(ctx, chaosReq(i)); err != nil {
			return fmt.Errorf("prewarm key %d: %w", i, err)
		}
	}
	if place > 0 {
		for i := 0; i < keys; i++ {
			if _, err := warm.Place(ctx, placeReq(i)); err != nil {
				return fmt.Errorf("prewarm place key %d: %w", i, err)
			}
		}
	}
	time.Sleep(settle)

	type result struct {
		err      error
		degraded bool
		warning  string
	}
	results := make(chan result, clients*(requests+place))
	hist := report.NewLatencyHistogram()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.New(client.Config{
				BaseURL:        baseURL,
				MaxAttempts:    3,
				AttemptTimeout: 5 * time.Second,
				BaseDelay:      5 * time.Millisecond,
				MaxDelay:       100 * time.Millisecond,
				Seed:           seed + uint64(i),
			})
			if err != nil {
				results <- result{err: err}
				return
			}
			for j := 0; j < requests; j++ {
				start := time.Now()
				rec, err := c.Analyze(ctx, chaosReq((i*requests+j)%keys))
				hist.Observe(time.Since(start))
				results <- result{err: err, degraded: rec.Degraded, warning: rec.Warning}
			}
			for j := 0; j < place; j++ {
				start := time.Now()
				resp, err := c.Place(ctx, placeReq((i*place+j)%keys))
				hist.Observe(time.Since(start))
				results <- result{err: err, degraded: resp.Degraded, warning: resp.Warning}
			}
		}(i)
	}
	wg.Wait()
	close(results)

	total, answered, degraded, unmarked := 0, 0, 0, 0
	var firstErr error
	for r := range results {
		total++
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		answered++
		if r.degraded {
			degraded++
			if r.warning == "" {
				unmarked++
			}
		}
	}
	ratio := float64(answered) / float64(total)
	fmt.Printf("chaosprobe: answered %d/%d (%.1f%%), degraded %d, p99 %v\n",
		answered, total, 100*ratio, degraded, hist.Quantile(0.99))
	if unmarked > 0 {
		return fmt.Errorf("%d degraded answers carried no warning", unmarked)
	}
	if ratio < minOK {
		return fmt.Errorf("answered %.1f%% < required %.1f%% (first error: %v)",
			100*ratio, 100*minOK, firstErr)
	}
	return nil
}
