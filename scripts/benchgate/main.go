// Command benchgate turns `go test -bench` output into the canonical
// benchmark-trajectory artifact (BENCH_PR4.json) and enforces the
// performance gate in CI.
//
// Usage:
//
//	benchgate emit  <bench-output-file>                  # canonical JSON on stdout
//	benchgate check <baseline.json> <bench-output-file>  # exit 1 on regression
//	benchgate baseline [dir]                             # newest BENCH_PR<n>.json path
//
// baseline prints the path of the highest-numbered BENCH_PR<n>.json
// artifact in dir (default "."), so the gate always judges against the
// latest checked-in trajectory point; it exits non-zero when no artifact
// exists at all — a gate with no baseline would pass vacuously.
//
// The gate is hardware-neutral: it compares the event/scan speedup ratios
// (both engines measured in the same process on the same host), not
// absolute throughput, so it is meaningful on any CI machine. check fails
// when
//
//   - a ratio cell regresses more than 20% below the checked-in baseline,
//   - any ratio cell falls below event/scan parity (ratio >= 1.0) — with
//     compute-run macro-stepping the event engine beats or matches the scan
//     engine on EVERY workload in the grid, so parity is a universal floor,
//     not a per-cell ratchet,
//   - any benchmark cell exceeds 1 allocation per op (the engine's
//     per-cycle path is allocation-free by design; 1 tolerates testing
//     harness noise),
//   - the baseline's memory-bound headline ratio is below the 2.0 floor
//     (the artifact property this PR claims), or
//   - the steady-state run path allocates.
//
// The extra subcommand
//
//	benchgate slowest <bench-output-file>                # slowest engine cell
//
// prints the BenchmarkEngine cell with the highest ns/op (as "bench/smtN"),
// so a failed gate run can re-profile exactly the cell that dominates the
// grid's wall time.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// ratioTolerance is how far a ratio cell may fall below baseline: 20%.
const ratioTolerance = 0.8

// memoryBoundFloor is the minimum event/scan speedup the baseline must
// show on its best memory-bound cell.
const memoryBoundFloor = 2.0

// parityFloor is the universal event/scan floor: every ratio cell of the
// current run must be at or above parity. Macro-stepping closed the last
// compute-bound gap (EP), so there is no exempt cell left — a cell below
// 1.0x means the event engine lost to its own referee on that workload.
const parityFloor = 1.0

// allocCeiling is the per-op allocation budget for every benchmark cell.
const allocCeiling = 1.0

// memBenches are the workload-library benchmarks the floor applies to.
var memBenches = map[string]bool{"CG": true, "Canneal": true}

// Cell is one benchmark's measurements. Engine cells carry both engines'
// throughput (measured interleaved in one benchmark) and their ratio; the
// steady-state cell carries only the event-engine throughput.
type Cell struct {
	NsPerOp         float64 `json:"ns_per_op"`
	McyclesPerS     float64 `json:"mcycles_per_sec"`
	ScanMcyclesPerS float64 `json:"scan_mcycles_per_sec,omitempty"`
	EventOverScan   float64 `json:"event_over_scan,omitempty"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
	HostCPUModel    string  `json:"host_cpu,omitempty"`
}

// Artifact is the canonical trajectory document.
type Artifact struct {
	Schema string `json:"schema"`
	// Cells maps "bench/smtN" (and "steady") to measurements.
	Cells map[string]Cell `json:"cells"`
	// Ratios maps "bench/smtN" to the event/scan Mcycles/s ratio, as
	// measured inside one interleaved benchmark.
	Ratios map[string]float64 `json:"ratios"`
	// Headline names the best memory-bound ratio cell and its value.
	Headline struct {
		Cell  string  `json:"cell"`
		Ratio float64 `json:"ratio"`
	} `json:"headline"`
	// SteadyStateAllocs is allocs/op on the steady-state run path.
	SteadyStateAllocs float64 `json:"steady_state_allocs_per_op"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "emit":
		if len(os.Args) != 3 {
			usage()
		}
		art, err := parseBenchFile(os.Args[2])
		if err != nil {
			fail(err)
		}
		out, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			fail(err)
		}
		if _, err := fmt.Println(string(out)); err != nil {
			fail(err)
		}
	case "baseline":
		if len(os.Args) > 3 {
			usage()
		}
		dir := "."
		if len(os.Args) == 3 {
			dir = os.Args[2]
		}
		path, err := latestBaseline(dir)
		if err != nil {
			fail(err)
		}
		fmt.Println(path)
	case "slowest":
		if len(os.Args) != 3 {
			usage()
		}
		art, err := parseBenchFile(os.Args[2])
		if err != nil {
			fail(err)
		}
		cell := slowestCell(art)
		if cell == "" {
			fail(fmt.Errorf("%s: no engine cells found", os.Args[2]))
		}
		fmt.Println(cell)
	case "check":
		if len(os.Args) != 4 {
			usage()
		}
		base, err := readArtifact(os.Args[2])
		if err != nil {
			fail(err)
		}
		cur, err := parseBenchFile(os.Args[3])
		if err != nil {
			fail(err)
		}
		if errs := gate(base, cur); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "benchgate: FAIL:", e)
			}
			os.Exit(1)
		}
		fmt.Printf("benchgate: ok (%d ratio cells within %.0f%% of baseline; headline %s %.2fx; steady-state allocs %.0f)\n",
			len(cur.Ratios), (1-ratioTolerance)*100, cur.Headline.Cell, cur.Headline.Ratio, cur.SteadyStateAllocs)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchgate emit <bench-output> | benchgate check <baseline.json> <bench-output> | benchgate baseline [dir] | benchgate slowest <bench-output>")
	os.Exit(2)
}

// slowestCell returns the engine cell ("bench/smtN") with the highest
// ns/op; ties resolve to the lexically smallest name for determinism.
func slowestCell(art *Artifact) string {
	best, bestNs := "", -1.0
	for name, c := range art.Cells {
		if name == "steady" {
			continue
		}
		if c.NsPerOp > bestNs || (c.NsPerOp == bestNs && name < best) {
			best, bestNs = name, c.NsPerOp
		}
	}
	return best
}

// benchPRName matches trajectory artifacts and captures the PR number.
var benchPRName = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// latestBaseline returns the path of the highest-numbered BENCH_PR<n>.json
// in dir. A missing artifact is an error, never an empty result: a gate run
// with no baseline to judge against must fail loudly, not pass vacuously.
func latestBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchPRName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= bestN {
			continue
		}
		best, bestN = filepath.Join(dir, e.Name()), n
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_PR<n>.json baseline in %s — the gate would pass vacuously; run scripts/bench.sh refresh to create one", dir)
	}
	return best, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

func readArtifact(path string) (*Artifact, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	art := &Artifact{}
	if err := json.Unmarshal(raw, art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return art, nil
}

// parseBenchFile reads `go test -bench` output and assembles the artifact.
func parseBenchFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	art := &Artifact{
		Schema: "smt-bench-trajectory/v1",
		Cells:  map[string]Cell{},
		Ratios: map[string]float64{},
	}
	cpuModel := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if model, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpuModel = model
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, cell, err := parseBenchLine(line)
		if err != nil {
			closeAndWrap(f)
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if name == "" {
			continue
		}
		cell.HostCPUModel = cpuModel
		art.Cells[name] = cell
	}
	if err := sc.Err(); err != nil {
		closeAndWrap(f)
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if len(art.Cells) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	fillDerived(art)
	return art, nil
}

// closeAndWrap closes f on an error path; the original error wins.
func closeAndWrap(f *os.File) {
	//lint:ignore errlint error-path cleanup: the parse error is what matters
	_ = f.Close()
}

// parseBenchLine extracts one benchmark result. Only BenchmarkEngine and
// BenchmarkSteadyState lines map to cells; others return an empty name.
func parseBenchLine(line string) (string, Cell, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return "", Cell{}, fmt.Errorf("short benchmark line: %q", line)
	}
	full := trimProcSuffix(fields[0])
	var name string
	switch {
	case strings.HasPrefix(full, "BenchmarkEngine/"):
		name = strings.TrimPrefix(full, "BenchmarkEngine/")
	case strings.HasPrefix(full, "BenchmarkSteadyState"):
		name = "steady"
	default:
		return "", Cell{}, nil
	}
	cell := Cell{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Cell{}, fmt.Errorf("bad value %q in %q", fields[i], line)
		}
		switch fields[i+1] {
		case "ns/op":
			cell.NsPerOp = v
		case "Mcycles/s":
			cell.McyclesPerS = v
		case "scanMcycles/s":
			cell.ScanMcyclesPerS = v
		case "ratio":
			cell.EventOverScan = v
		case "allocs/op":
			cell.AllocsPerOp = v
		case "B/op":
			cell.BytesPerOp = v
		}
	}
	if cell.McyclesPerS == 0 {
		return "", Cell{}, fmt.Errorf("no Mcycles/s metric in %q", line)
	}
	return name, cell, nil
}

// trimProcSuffix drops the -GOMAXPROCS suffix Go appends to benchmark names.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// fillDerived collects the event/scan ratios, the memory-bound headline,
// and the steady-state allocation figure from the raw cells.
func fillDerived(art *Artifact) {
	for name, c := range art.Cells {
		if name == "steady" || c.EventOverScan == 0 {
			continue
		}
		art.Ratios[name] = c.EventOverScan
	}
	best, bestCell := 0.0, ""
	for rest, r := range art.Ratios {
		bench := rest
		if i := strings.Index(rest, "/"); i >= 0 {
			bench = rest[:i]
		}
		if !memBenches[bench] {
			continue
		}
		// Ties resolve to the lexically smallest cell for determinism.
		if r > best || (r == best && (bestCell == "" || rest < bestCell)) {
			best, bestCell = r, rest
		}
	}
	art.Headline.Cell = bestCell
	art.Headline.Ratio = best
	if s, ok := art.Cells["steady"]; ok {
		art.SteadyStateAllocs = s.AllocsPerOp
	}
}

// gate returns every rule the current run violates against the baseline.
func gate(base, cur *Artifact) []string {
	var errs []string
	if base.Headline.Ratio < memoryBoundFloor {
		errs = append(errs, fmt.Sprintf(
			"baseline headline %s is %.2fx, below the %.1fx memory-bound floor — regenerate the baseline from a faster engine, don't lower the floor",
			base.Headline.Cell, base.Headline.Ratio, memoryBoundFloor))
	}
	keys := make([]string, 0, len(base.Ratios))
	for k := range base.Ratios {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base.Ratios[k]
		c, ok := cur.Ratios[k]
		if !ok {
			errs = append(errs, fmt.Sprintf("ratio cell %s missing from current run", k))
			continue
		}
		if c < b*ratioTolerance {
			errs = append(errs, fmt.Sprintf(
				"ratio %s regressed: %.2fx vs baseline %.2fx (>20%% drop)", k, c, b))
		}
		// Parity is a universal floor: the event engine must beat or match
		// the scan referee on every grid cell, even inside the 20% noise
		// tolerance.
		if c < parityFloor {
			errs = append(errs, fmt.Sprintf(
				"ratio %s fell below event/scan parity: %.2fx (baseline %.2fx)", k, c, b))
		}
	}
	cellKeys := make([]string, 0, len(cur.Cells))
	for k := range cur.Cells {
		cellKeys = append(cellKeys, k)
	}
	sort.Strings(cellKeys)
	for _, k := range cellKeys {
		if a := cur.Cells[k].AllocsPerOp; a > allocCeiling {
			errs = append(errs, fmt.Sprintf(
				"cell %s allocates %.1f allocs/op, want <= %.0f", k, a, allocCeiling))
		}
	}
	if _, ok := cur.Cells["steady"]; !ok {
		errs = append(errs, "steady-state cell missing from current run")
	} else if cur.SteadyStateAllocs != 0 {
		errs = append(errs, fmt.Sprintf(
			"steady-state run path allocates: %.1f allocs/op, want 0", cur.SteadyStateAllocs))
	}
	return errs
}
