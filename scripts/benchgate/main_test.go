package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/cpu
cpu: Example CPU @ 2.70GHz
BenchmarkEngine/EP/smt1-8 	       2	3151113085 ns/op	         0.2350 Mcycles/s	         0.2300 scanMcycles/s	         1.022 ratio	      32 B/op	       0 allocs/op
BenchmarkEngine/CG/smt4-8 	       2	1118610114 ns/op	         1.129 Mcycles/s	         0.5328 scanMcycles/s	         2.119 ratio	     128 B/op	       0 allocs/op
BenchmarkSteadyState-8    	      43	  25944670 ns/op	         5.396 Mcycles/s	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/cpu	110.357s
`

func writeSample(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.out")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchFile(t *testing.T) {
	art, err := parseBenchFile(writeSample(t, sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Cells) != 3 {
		t.Fatalf("parsed %d cells, want 3", len(art.Cells))
	}
	cg := art.Cells["CG/smt4"]
	if cg.McyclesPerS != 1.129 || cg.ScanMcyclesPerS != 0.5328 || cg.EventOverScan != 2.119 {
		t.Fatalf("CG/smt4 cell = %+v", cg)
	}
	if cg.HostCPUModel != "Example CPU @ 2.70GHz" {
		t.Fatalf("host cpu = %q", cg.HostCPUModel)
	}
	if art.Ratios["CG/smt4"] != 2.119 || art.Ratios["EP/smt1"] != 1.022 {
		t.Fatalf("ratios = %+v", art.Ratios)
	}
	if art.Headline.Cell != "CG/smt4" || art.Headline.Ratio != 2.119 {
		t.Fatalf("headline = %+v", art.Headline)
	}
	if art.SteadyStateAllocs != 0 {
		t.Fatalf("steady allocs = %v", art.SteadyStateAllocs)
	}
}

func TestGate(t *testing.T) {
	base, err := parseBenchFile(writeSample(t, sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := parseBenchFile(writeSample(t, sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if errs := gate(base, cur); len(errs) != 0 {
		t.Fatalf("identical runs should pass, got %v", errs)
	}

	// A >20% ratio drop fails.
	regressed := cur.Cells["CG/smt4"]
	regressed.EventOverScan = 1.5
	cur.Cells["CG/smt4"] = regressed
	cur.Ratios["CG/smt4"] = 1.5
	if errs := gate(base, cur); len(errs) != 1 {
		t.Fatalf("regressed ratio should fail once, got %v", errs)
	}
	cur.Ratios["CG/smt4"] = 2.119

	// A missing cell fails.
	delete(cur.Ratios, "EP/smt1")
	if errs := gate(base, cur); len(errs) != 1 {
		t.Fatalf("missing cell should fail once, got %v", errs)
	}
	cur.Ratios["EP/smt1"] = 1.022

	// Steady-state allocations fail.
	cur.SteadyStateAllocs = 2
	if errs := gate(base, cur); len(errs) != 1 {
		t.Fatalf("steady-state allocs should fail once, got %v", errs)
	}
	cur.SteadyStateAllocs = 0

	// A baseline below the memory-bound floor fails regardless of current.
	base.Headline.Ratio = 1.8
	if errs := gate(base, cur); len(errs) != 1 {
		t.Fatalf("weak baseline should fail once, got %v", errs)
	}
	base.Headline.Ratio = 2.119

	// A cell above 1 alloc/op fails even with healthy ratios.
	leaky := cur.Cells["EP/smt1"]
	leaky.AllocsPerOp = 7
	cur.Cells["EP/smt1"] = leaky
	if errs := gate(base, cur); len(errs) != 1 {
		t.Fatalf("allocating cell should fail once, got %v", errs)
	}
	leaky.AllocsPerOp = 1 // exactly at the ceiling passes
	cur.Cells["EP/smt1"] = leaky
	if errs := gate(base, cur); len(errs) != 0 {
		t.Fatalf("cell at the alloc ceiling should pass, got %v", errs)
	}
}

// TestGateParityFloor: every ratio cell must hold event/scan parity (>= 1.0),
// regardless of where the baseline sat — the floor is universal, there is no
// below-parity exemption anymore.
func TestGateParityFloor(t *testing.T) {
	base, err := parseBenchFile(writeSample(t, sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := parseBenchFile(writeSample(t, sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	base.Ratios["CG/smt4"] = 1.1 // clearly held parity
	cur.Ratios["CG/smt4"] = 0.95 // within 20%, but below parity
	if errs := gate(base, cur); len(errs) != 1 {
		t.Fatalf("parity loss should fail once, got %v", errs)
	}

	// A baseline cell that brushed parity still carries the full floor: the
	// compute-bound cells hold >= 1.0 via macro-stepping and must keep it.
	base.Ratios["EP/smt1"] = 1.01
	cur.Ratios["EP/smt1"] = 0.97
	cur.Ratios["CG/smt4"] = 1.05
	if errs := gate(base, cur); len(errs) != 1 {
		t.Fatalf("parity loss on a brushing baseline should fail once, got %v", errs)
	}

	// At the floor exactly passes.
	cur.Ratios["EP/smt1"] = 1.0
	if errs := gate(base, cur); len(errs) != 0 {
		t.Fatalf("cell at the parity floor should pass, got %v", errs)
	}
}

// TestSlowestCell pins the profile-target selection: highest ns/op engine
// cell wins and the steady-state benchmark is never the target.
func TestSlowestCell(t *testing.T) {
	art, err := parseBenchFile(writeSample(t, sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := slowestCell(art); got != "EP/smt1" {
		t.Fatalf("slowestCell = %q, want EP/smt1", got)
	}
	cg := art.Cells["CG/smt4"]
	cg.NsPerOp = art.Cells["EP/smt1"].NsPerOp + 1
	art.Cells["CG/smt4"] = cg
	if got := slowestCell(art); got != "CG/smt4" {
		t.Fatalf("slowestCell = %q, want CG/smt4", got)
	}
}

// TestLatestBaseline pins the artifact selection rule: highest PR number
// wins (numerically, not lexically), and no artifact at all is a loud error
// rather than a vacuous pass.
func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	if _, err := latestBaseline(dir); err == nil {
		t.Fatal("empty dir should be an error, not a silent pass")
	}
	for _, name := range []string{"BENCH_PR4.json", "BENCH_PR7.json", "BENCH_PR10.json",
		"BENCH_PRx.json", "BENCH_PR2.json.bak", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_PR10.json"); got != want {
		t.Fatalf("latestBaseline = %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := parseBenchFile(writeSample(t, "PASS\nok x 1s\n")); err == nil {
		t.Fatal("want error for output without benchmark lines")
	}
	bad := "BenchmarkEngine/CG/smt4-8 2 oops ns/op 1.0 Mcycles/s\n"
	if _, err := parseBenchFile(writeSample(t, bad)); err == nil {
		t.Fatal("want error for malformed value")
	}
	noMetric := "BenchmarkEngine/CG/smt4-8 2 100 ns/op\n"
	if _, err := parseBenchFile(writeSample(t, noMetric)); err == nil {
		t.Fatal("want error for missing Mcycles/s metric")
	}
}
