#!/usr/bin/env sh
# The single CI entrypoint, runnable stage by stage.
#
# Usage:
#   scripts/ci.sh                  # full pipeline (every stage)
#   scripts/ci.sh quick            # every stage except race and fuzz
#   scripts/ci.sh <stage> [...]    # run the named stages in order
#
# Stages:
#   lint       build + smtlint + vet + gofmt
#   test       unit & golden tests
#   bench      compile and run every benchmark once
#   benchgate  benchmark-trajectory gate (scripts/bench.sh)
#   smoke      smtservd boot, /healthz, graceful drain
#   chaos      seeded fault injection against one live smtservd
#   fleet      router + 2 shards, SIGKILL one shard mid-burst
#   race       race detector on the concurrent packages
#   fuzz       fuzz smoke (10s per target)
#
# CI (.github/workflows/ci.yml) calls this same entrypoint one stage per
# job, so a green local run means a green CI run and there is no script/
# workflow drift to maintain. Every stage is independently runnable: the
# server stages each build their own binaries into their own temp dir.
# Logs land in $CI_ARTIFACT_DIR (default: a fresh temp dir) so CI can
# upload them when a stage fails.
set -eu

artdir=${CI_ARTIFACT_DIR:-$(mktemp -d)}
mkdir -p "$artdir"

step() {
	echo
	echo "==> $*"
}

fail() {
	echo "ci.sh: $*" >&2
	exit 1
}

wait_healthy() {
	go run ./scripts/healthcheck -url "$1" -timeout 15s
}

stage_lint() {
	step "build"
	go build ./...
	step "wire-contract lock check"
	scripts/contract.sh check
	step "lint (smtlint + vet + gofmt)"
	# The smtlint/v2 JSON report is the failure artifact: diagnostics plus
	# the per-analyzer suppression tally.
	ok=0
	go run ./cmd/smtlint -json ./... >"$artdir/smtlint.json" || ok=$?
	if [ "$ok" -ne 0 ]; then
		cat "$artdir/smtlint.json"
		fail "smtlint found issues (report: $artdir/smtlint.json)"
	fi
	go vet ./...
	out="$(gofmt -l .)"
	if [ -n "$out" ]; then
		echo "gofmt needed on:" >&2
		echo "$out" >&2
		exit 1
	fi
}

stage_test() {
	step "unit & golden tests"
	# The log is an artifact: on a golden-gate failure it carries the diff
	# against the checked-in artifacts.
	ok=0
	go test -count=1 ./... >"$artdir/test.log" 2>&1 || ok=$?
	cat "$artdir/test.log"
	[ "$ok" -eq 0 ] || exit "$ok"
}

stage_bench() {
	step "bench smoke"
	go test -run '^$' -bench . -benchtime=1x ./...
}

stage_benchgate() {
	step "bench trajectory gate"
	scripts/bench.sh
}

stage_smoke() {
	step "smtservd smoke (boot, /healthz, graceful drain)"
	dir=$(mktemp -d)
	go build -o "$dir/smtservd" ./cmd/smtservd
	"$dir/smtservd" -addr 127.0.0.1:18700 -quiet >"$artdir/smoke-smtservd.log" 2>&1 &
	servd_pid=$!
	if ! wait_healthy http://127.0.0.1:18700/healthz; then
		kill "$servd_pid" 2>/dev/null || true
		fail "smtservd never became healthy (log: $artdir/smoke-smtservd.log)"
	fi
	kill -TERM "$servd_pid"
	wait "$servd_pid" || fail "smtservd drain failed (log: $artdir/smoke-smtservd.log)"
}

stage_chaos() {
	step "chaos smoke (seeded fault injection against live smtservd)"
	dir=$(mktemp -d)
	go build -o "$dir/smtservd" ./cmd/smtservd
	go build -o "$dir/chaosprobe" ./scripts/chaosprobe
	"$dir/smtservd" -addr 127.0.0.1:18701 -quiet \
		-faults scripts/chaos-schedule.json \
		-cache-ttl 50ms -breaker-threshold 4 -breaker-cooldown 100ms -timeout 2s \
		>"$artdir/chaos-smtservd.log" 2>&1 &
	chaos_pid=$!
	if ! wait_healthy http://127.0.0.1:18701/healthz; then
		kill "$chaos_pid" 2>/dev/null || true
		fail "chaos smtservd never became healthy (log: $artdir/chaos-smtservd.log)"
	fi
	if ! "$dir/chaosprobe" -url http://127.0.0.1:18701 -clients 16 -requests 4; then
		kill "$chaos_pid" 2>/dev/null || true
		fail "chaos probe failed (log: $artdir/chaos-smtservd.log)"
	fi
	kill -TERM "$chaos_pid"
	wait "$chaos_pid" || fail "chaos smtservd drain failed"
}

stage_fleet() {
	step "fleet smoke (router + 2 shards, SIGKILL one shard mid-burst)"
	dir=$(mktemp -d)
	go build -o "$dir/smtservd" ./cmd/smtservd
	go build -o "$dir/smtrouter" ./cmd/smtrouter
	go build -o "$dir/chaosprobe" ./scripts/chaosprobe
	"$dir/smtservd" -addr 127.0.0.1:18710 -quiet -coalesce-window 2ms \
		>"$artdir/fleet-shard0.log" 2>&1 &
	shard0=$!
	"$dir/smtservd" -addr 127.0.0.1:18711 -quiet -coalesce-window 2ms \
		>"$artdir/fleet-shard1.log" 2>&1 &
	shard1=$!
	"$dir/smtrouter" -addr 127.0.0.1:18712 -quiet \
		-shards http://127.0.0.1:18710,http://127.0.0.1:18711 \
		-replicas 2 -cooldown 500ms \
		>"$artdir/fleet-router.log" 2>&1 &
	router=$!
	fleet_down() { kill "$shard0" "$shard1" "$router" 2>/dev/null || true; }
	for url in http://127.0.0.1:18710/healthz http://127.0.0.1:18711/healthz http://127.0.0.1:18712/healthz; do
		if ! wait_healthy "$url"; then
			fleet_down
			fail "fleet never became healthy (logs: $artdir/fleet-*.log)"
		fi
	done
	# Burst 1 through the router with a SIGKILL of shard 0 landing mid-run:
	# >= 99% of requests must still be answered (degraded answers marked),
	# which is the PR 5 chaos gate lifted to fleet scope. The burst mixes
	# /v1/analyze and /v1/place traffic so placement forwarding rides the
	# same replica-fallback contract.
	"$dir/chaosprobe" -url http://127.0.0.1:18712 -clients 16 -requests 25 -place 4 &
	probe=$!
	sleep 0.3
	kill -9 "$shard0" 2>/dev/null || true
	if ! wait "$probe"; then
		fleet_down
		fail "fleet chaos probe failed during shard kill (logs: $artdir/fleet-*.log)"
	fi
	# Burst 2 entirely after the loss: the surviving replica must answer
	# everything once the router has rebalanced.
	if ! "$dir/chaosprobe" -url http://127.0.0.1:18712 -clients 16 -requests 8 -place 2; then
		fleet_down
		fail "fleet chaos probe failed after shard loss (logs: $artdir/fleet-*.log)"
	fi
	kill -TERM "$router" "$shard1"
	wait "$router" || { kill "$shard1" 2>/dev/null || true; fail "router drain failed"; }
	wait "$shard1" || fail "surviving shard drain failed"
	wait "$shard0" 2>/dev/null || true
}

stage_race() {
	# racecover cross-checks the package list below against every
	# internal/* package that starts a goroutine, so additions to the tree
	# cannot silently dodge the detector.
	step "race-coverage check (smtlint racecover)"
	go run ./cmd/smtlint -run racecover ./...
	step "race detector (concurrent packages)"
	go test -race -count=1 ./internal/experiments ./internal/cpu ./internal/sched \
		./internal/server ./internal/router ./internal/report ./internal/fault \
		./internal/controller ./internal/workload ./internal/placement ./client
	# Chip-parallel determinism, explicitly: batched simulation must be
	# bit-identical to solo runs at any GOMAXPROCS, with the race detector
	# watching the per-group domain isolation.
	step "chip-parallel determinism under race"
	go test -race -count=1 -run 'TestRunBatchDeterminism|TestRunBatchMatchesSolo|TestBatchedAnalyzeMatchesSolo' \
		./internal/cpu ./internal/server
}

stage_fuzz() {
	step "fuzz smoke (10s per target)"
	go test -run '^$' -fuzz FuzzReader -fuzztime 10s ./internal/trace
	go test -run '^$' -fuzz FuzzSpecJSON -fuzztime 10s ./internal/workload
}

run_stage() {
	case "$1" in
	lint | test | bench | benchgate | smoke | chaos | fleet | race | fuzz)
		"stage_$1"
		;;
	*)
		fail "unknown stage '$1' (stages: lint test bench benchgate smoke chaos fleet race fuzz, or 'all'/'quick')"
		;;
	esac
}

if [ $# -eq 0 ]; then
	set -- all
fi
case "$1" in
all)
	for s in lint test bench benchgate smoke chaos fleet race fuzz; do
		run_stage "$s"
	done
	;;
quick)
	for s in lint test bench benchgate smoke chaos fleet; do
		run_stage "$s"
	done
	echo
	echo "quick mode: skipped race and fuzz stages"
	;;
*)
	for s in "$@"; do
		run_stage "$s"
	done
	;;
esac

echo
echo "CI stages passed: $*"
