#!/usr/bin/env sh
# Reproduce the CI pipeline (.github/workflows/ci.yml) locally.
#
# Usage:
#   scripts/ci.sh         # full pipeline
#   scripts/ci.sh quick   # skip the slow stages (race, fuzz)
#
# Stages mirror the workflow jobs one-to-one so a green local run means a
# green CI run.
set -eu

quick=${1:-}

step() {
	echo
	echo "==> $*"
}

step "build"
go build ./...

step "lint (smtlint + vet + gofmt)"
go run ./cmd/smtlint ./...
go vet ./...
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:" >&2
	echo "$out" >&2
	exit 1
fi

step "unit & golden tests"
go test -count=1 ./...

step "bench smoke"
go test -run '^$' -bench . -benchtime=1x ./...

step "bench trajectory gate"
scripts/bench.sh

step "smtservd smoke"
bin="$(mktemp -d)/smtservd"
go build -o "$bin" ./cmd/smtservd
"$bin" -addr 127.0.0.1:18700 -quiet &
servd_pid=$!
if ! go run ./scripts/healthcheck -url http://127.0.0.1:18700/healthz -timeout 15s; then
	kill "$servd_pid" 2>/dev/null || true
	exit 1
fi
kill -TERM "$servd_pid"
wait "$servd_pid"

step "chaos smoke (seeded fault injection against live smtservd)"
"$bin" -addr 127.0.0.1:18701 -quiet \
	-faults scripts/chaos-schedule.json \
	-cache-ttl 50ms -breaker-threshold 4 -breaker-cooldown 100ms -timeout 2s &
chaos_pid=$!
if ! go run ./scripts/healthcheck -url http://127.0.0.1:18701/healthz -timeout 15s; then
	kill "$chaos_pid" 2>/dev/null || true
	exit 1
fi
if ! go run ./scripts/chaosprobe -url http://127.0.0.1:18701 -clients 16 -requests 4; then
	kill "$chaos_pid" 2>/dev/null || true
	exit 1
fi
kill -TERM "$chaos_pid"
wait "$chaos_pid"

if [ "$quick" = "quick" ]; then
	echo
	echo "quick mode: skipping race and fuzz stages"
	exit 0
fi

step "race detector (concurrent packages)"
go test -race -count=1 ./internal/experiments ./internal/cpu ./internal/sched \
	./internal/server ./internal/report ./internal/fault ./client

step "fuzz smoke (10s per target)"
go test -run '^$' -fuzz FuzzReader -fuzztime 10s ./internal/trace
go test -run '^$' -fuzz FuzzSpecJSON -fuzztime 10s ./internal/workload

echo
echo "CI pipeline passed."
